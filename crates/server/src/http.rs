//! A minimal, dependency-free HTTP/1.1 subset.
//!
//! The server speaks exactly what its clients (curl, the bench harness,
//! the integration tests) need: one request per connection
//! (`Connection: close`), `Content-Length`-framed bodies, query strings
//! with percent-encoding. Chunked transfer encoding and keep-alive are
//! deliberately out of scope — rejecting them loudly beats implementing
//! them quietly wrong.
//!
//! Parsing is pure over any `BufRead`, so the whole request path is
//! testable without sockets.

use std::io::{BufRead, Write};

/// Upper bound on declared body size (64 MiB) — a million-row CSV upload
/// fits comfortably; anything larger is rejected with 413 rather than
/// buffered blindly.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Upper bound on header count, against malicious header floods.
const MAX_HEADERS: usize = 128;

/// Upper bound on one request-line or header line (8 KiB, nginx's
/// default). `read_line` alone would buffer a newline-free stream without
/// limit — the body cap never engages on the head — so head lines are
/// read through this cap.
const MAX_LINE_BYTES: usize = 8 * 1024;

/// Reads one `\n`-terminated line of at most [`MAX_LINE_BYTES`],
/// rejecting longer ones with `431` instead of buffering them.
///
/// A line must actually end in `\n`: an EOF mid-line means the head was
/// cut off (dropped connection, truncated proxy buffer), and a partial
/// line must not parse as a complete one. Most dangerously, a cut-off
/// header line would otherwise read back as the blank separator line and
/// the truncated request would be *served* instead of refused.
fn read_limited_line(reader: &mut impl BufRead) -> Result<String, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    let mut terminated = false;
    loop {
        let chunk = reader
            .fill_buf()
            .map_err(|e| HttpError::bad(format!("read error: {e}")))?;
        if chunk.is_empty() {
            break; // EOF mid-line: rejected below
        }
        let (take, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(at) => (at + 1, true),
            None => (chunk.len(), false),
        };
        if line.len() + take > MAX_LINE_BYTES {
            return Err(HttpError {
                status: 431,
                message: format!("header line exceeds the {MAX_LINE_BYTES}-byte limit"),
            });
        }
        line.extend_from_slice(&chunk[..take]);
        reader.consume(take);
        if done {
            terminated = true;
            break;
        }
    }
    if !terminated {
        return Err(HttpError::bad("truncated request head"));
    }
    String::from_utf8(line).map_err(|_| HttpError::bad("non-UTF-8 request head"))
}

/// A parsed request: method, decoded path, decoded query pairs, headers
/// and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, … (upper-case as received).
    pub method: String,
    /// The path component of the target, percent-decoded (`/anonymize`).
    pub path: String,
    /// Query pairs in request order, percent-decoded.
    pub query: Vec<(String, String)>,
    /// Headers in request order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The raw body.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a query parameter.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The validated `Content-Length`, when one was declared.
    ///
    /// Framing is strict because the body boundary is what separates one
    /// request from attacker-controlled trailing bytes: a *single*
    /// declaration (two headers — even agreeing ones — are the shape of
    /// a request-smuggling framing lie, where first-wins and last-wins
    /// parsers read different bodies), and DIGIT-only syntax (`usize`'s
    /// parser also accepts `+5`, which HTTP does not).
    pub fn declared_content_length(&self) -> Result<Option<usize>, HttpError> {
        let mut declared: Option<&str> = None;
        for (name, value) in &self.headers {
            if name != "content-length" {
                continue;
            }
            if let Some(first) = declared {
                return Err(HttpError::bad(format!(
                    "duplicate Content-Length headers ('{first}', '{value}')"
                )));
            }
            declared = Some(value);
        }
        let Some(len) = declared else {
            return Ok(None);
        };
        if len.is_empty() || !len.bytes().all(|b| b.is_ascii_digit()) {
            return Err(HttpError::bad(format!("bad Content-Length '{len}'")));
        }
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::bad(format!("bad Content-Length '{len}'")))?;
        if len > MAX_BODY_BYTES {
            return Err(HttpError {
                status: 413,
                message: format!("body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"),
            });
        }
        Ok(Some(len))
    }

    /// Whether the client asked for a `100 Continue` interim before
    /// sending its body (`Expect: 100-continue` — curl's default for
    /// bodies over 1 KiB).
    pub fn expects_continue(&self) -> bool {
        self.header("expect")
            .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
    }
}

/// A request the parser refused, with the status code to answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// The HTTP status to respond with (400, 413, 501).
    pub status: u16,
    /// Human-readable reason.
    pub message: String,
}

impl HttpError {
    fn bad(message: impl Into<String>) -> Self {
        HttpError {
            status: 400,
            message: message.into(),
        }
    }
}

/// Parses one request from a stream: head plus body.
///
/// Socket callers should prefer [`parse_head`] + [`read_body`] with a
/// `100 Continue` interim in between (see
/// [`expects_continue`](Request::expects_continue)) — curl sends
/// `Expect: 100-continue` for bodies over 1 KiB and stalls ~1 s when the
/// interim never arrives.
pub fn parse_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let mut request = parse_head(reader)?;
    read_body(reader, &mut request)?;
    Ok(request)
}

/// Parses the request line and headers (not the body), validating the
/// framing: `Content-Length` within bounds, no chunked encoding.
pub fn parse_head(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let line = read_limited_line(reader)?;
    let line = line.trim_end_matches(['\r', '\n']);
    if line.is_empty() {
        return Err(HttpError::bad("empty request line"));
    }
    let mut parts = line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::bad("missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad("missing request target"))?;
    match parts.next() {
        Some("HTTP/1.1") | Some("HTTP/1.0") => {}
        other => {
            return Err(HttpError::bad(format!(
                "unsupported protocol {:?}",
                other.unwrap_or("")
            )))
        }
    }

    let (path, query) = split_target(target);

    let mut headers = Vec::new();
    loop {
        let header = read_limited_line(reader)?;
        let header = header.trim_end_matches(['\r', '\n']);
        if header.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::bad("too many headers"));
        }
        let (name, value) = header
            .split_once(':')
            .ok_or_else(|| HttpError::bad(format!("malformed header '{header}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };

    if let Some(te) = request.header("transfer-encoding") {
        return Err(HttpError {
            status: 501,
            message: format!("transfer-encoding '{te}' not supported; use Content-Length"),
        });
    }
    request.declared_content_length()?; // validate framing up front
    Ok(request)
}

/// Reads the `Content-Length`-declared body into `request.body`.
pub fn read_body(reader: &mut impl BufRead, request: &mut Request) -> Result<(), HttpError> {
    if let Some(len) = request.declared_content_length()? {
        let mut body = vec![0u8; len];
        std::io::Read::read_exact(reader, &mut body)
            .map_err(|e| HttpError::bad(format!("truncated body: {e}")))?;
        request.body = body;
    }
    Ok(())
}

/// Splits a request target into decoded path and query pairs.
///
/// `+`-as-space is an `application/x-www-form-urlencoded` convention
/// that only applies to query pairs: in the path component a `+` is a
/// literal plus (else `/datasets/a+b` would resolve as `/datasets/a b`
/// and a space-named resource would shadow a plus-named one).
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (decode_component(target, false), Vec::new()),
        Some((path, query)) => {
            let pairs = query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(pair), String::new()),
                })
                .collect();
            (decode_component(path, false), pairs)
        }
    }
}

/// Decodes `%XX` escapes and `+`-as-space — the form-urlencoded (query
/// pair) convention. Path components go through [`decode_component`]
/// with `+` kept literal. Invalid escapes pass through literally;
/// invalid UTF-8 is replaced.
pub fn percent_decode(s: &str) -> String {
    decode_component(s, true)
}

fn decode_component(s: &str, plus_as_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex(bytes.get(i + 1)), hex(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex(b: Option<&u8>) -> Option<u8> {
    (*b? as char).to_digit(16).map(|d| d as u8)
}

/// A response ready to serialize: status, content type and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (name, value), written after the standard
    /// ones. Used for `X-Ldiv-Trace-Id`.
    pub headers: Vec<(&'static str, String)>,
    /// The body text.
    pub body: String,
    /// A binary body, when one replaces `body` (negotiated
    /// `application/x-ldiv-bin` responses). `None` for every text
    /// response; when `Some`, `body` is empty and these bytes are what
    /// gets framed and written.
    pub bytes: Option<Vec<u8>>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
            bytes: None,
        }
    }

    /// A plain-text response in the Prometheus exposition content type
    /// (`GET /metrics`).
    pub fn metrics_text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
            bytes: None,
        }
    }

    /// Converts this response into a binary-bodied one
    /// (`application/x-ldiv-bin`), keeping status and extra headers.
    pub fn into_binary(mut self, bytes: Vec<u8>) -> Self {
        self.content_type = "application/x-ldiv-bin";
        self.body = String::new();
        self.bytes = Some(bytes);
        self
    }

    /// Builder-style extra header. The value must be a valid header
    /// value (no CR/LF); callers only pass generated tokens.
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        self.headers.push((name, value));
        self
    }

    /// The standard reason phrase for the status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            422 => "Unprocessable Entity",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// Serializes the response (always `Connection: close`).
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        let payload = self.bytes.as_deref().unwrap_or(self.body.as_bytes());
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            self.reason(),
            self.content_type,
            payload.len()
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(payload)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> Result<Request, HttpError> {
        parse_request(&mut Cursor::new(text.as_bytes().to_vec()))
    }

    #[test]
    fn parses_request_line_query_headers_and_body() {
        let req = parse(
            "POST /anonymize?algo=tp%2B&l=3&note=a+b HTTP/1.1\r\n\
             Host: x\r\nContent-Length: 4\r\n\r\nBODY",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/anonymize");
        assert_eq!(req.query_param("algo"), Some("tp+"));
        assert_eq!(req.query_param("l"), Some("3"));
        assert_eq!(req.query_param("note"), Some("a b"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"BODY");
    }

    #[test]
    fn rejects_garbage_chunked_and_oversized() {
        assert_eq!(parse("").unwrap_err().status, 400);
        assert_eq!(parse("GET\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET / SPDY/9\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status,
            501
        );
        assert_eq!(
            parse(&format!(
                "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            ))
            .unwrap_err()
            .status,
            413
        );
        // Declared length longer than the stream.
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort")
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn oversized_head_lines_get_431_not_unbounded_buffering() {
        // A newline-free flood: rejected once the line cap is hit, long
        // before the stream is exhausted.
        let flood = "G".repeat(MAX_LINE_BYTES * 4);
        assert_eq!(parse(&flood).unwrap_err().status, 431);
        // Same for one absurd header line.
        let long_header = format!(
            "GET / HTTP/1.1\r\nx: {}\r\n\r\n",
            "v".repeat(MAX_LINE_BYTES)
        );
        assert_eq!(parse(&long_header).unwrap_err().status, 431);
        // A line just under the cap is fine.
        let ok = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(1024));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn head_body_split_supports_expect_continue() {
        let text = "POST / HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 4\r\n\r\nBODY";
        let mut reader = Cursor::new(text.as_bytes().to_vec());
        let mut request = parse_head(&mut reader).unwrap();
        assert!(request.expects_continue());
        assert!(request.body.is_empty());
        // The interim would be written here; then the body is read.
        read_body(&mut reader, &mut request).unwrap();
        assert_eq!(request.body, b"BODY");

        let plain = parse("GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(!plain.expects_continue());
    }

    #[test]
    fn percent_decoding_is_lenient() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn duplicate_or_conflicting_content_length_is_rejected() {
        // Conflicting declarations: a first-wins parser would frame a
        // 4-byte body and leave 8 attacker bytes on the stream.
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 12\r\n\r\nBODYBODYBODY")
                .unwrap_err()
                .status,
            400
        );
        // Even agreeing duplicates are refused: intermediaries disagree
        // on how to merge them, so one declaration is the only safe form.
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nBODY")
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn content_length_must_be_digits_only() {
        // `usize::parse` accepts a leading `+`; HTTP's DIGIT syntax does
        // not.
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: +5\r\n\r\nBODY5")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length:\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
        // The socket parser trims header values, but the check must not
        // depend on that: a directly constructed request with inner
        // whitespace is refused too.
        let req = Request {
            method: "POST".into(),
            path: "/".into(),
            query: Vec::new(),
            headers: vec![("content-length".into(), " 5".into())],
            body: Vec::new(),
        };
        assert!(req.declared_content_length().is_err());
    }

    #[test]
    fn plus_stays_literal_in_the_path() {
        let req = parse("GET /datasets/a+b?note=a+b HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/datasets/a+b");
        // The form-urlencoded convention still applies to query pairs.
        assert_eq!(req.query_param("note"), Some("a b"));
        // An escaped plus decodes to a literal plus everywhere.
        let req = parse("GET /a%2Bb HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/a+b");
    }

    #[test]
    fn truncated_heads_are_rejected_not_served() {
        // Cut mid-header: the EOF used to read back as the blank
        // separator line, so this parsed as a complete bodyless request.
        assert_eq!(
            parse("GET /stats HTTP/1.1\r\nHost: exam")
                .unwrap_err()
                .status,
            400
        );
        // Cut mid-request-line.
        assert_eq!(parse("GET /anony").unwrap_err().status, 400);
        // Head lines complete but the blank separator never arrived.
        assert_eq!(parse("GET / HTTP/1.1\r\n").unwrap_err().status, 400);
    }

    #[test]
    fn response_serializes_with_content_length() {
        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn binary_responses_frame_the_byte_payload() {
        let response = Response::json(200, "{}")
            .with_header("X-Ldiv-Trace-Id", "abc".into())
            .into_binary(vec![0x4c, 0x44, 0x56, 0x57, 0x00]);
        assert_eq!(response.content_type, "application/x-ldiv-bin");
        assert!(response.body.is_empty());
        let mut out = Vec::new();
        response.write_to(&mut out).unwrap();
        let head_end = out.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        let head = std::str::from_utf8(&out[..head_end]).unwrap();
        assert!(
            head.contains("Content-Type: application/x-ldiv-bin\r\n"),
            "{head}"
        );
        assert!(head.contains("Content-Length: 5\r\n"), "{head}");
        assert!(head.contains("X-Ldiv-Trace-Id: abc\r\n"), "{head}");
        assert_eq!(&out[head_end..], b"LDVW\x00");
    }
}
