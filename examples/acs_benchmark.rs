//! Head-to-head comparison of the registered algorithms on an ACS-like
//! workload across a small `l` sweep, reporting stars, wall time and the
//! Eq. (2) KL-divergence — all through the unified `Mechanism` registry.
//!
//! A miniature of the paper's Figures 2, 4 and 7. Run with:
//! `cargo run --release --example acs_benchmark`

use ldiversity::datagen::{occ, AcsConfig};
use ldiversity::metrics::kl_divergence;
use ldiversity::{standard_registry, Params};
use std::time::Instant;

fn main() {
    let base = occ(&AcsConfig {
        rows: 15_000,
        seed: 11,
    });
    // OCC-4: Age, Race, Birth Place, Education.
    let table = base.project(&[0, 2, 4, 5]).expect("valid projection");
    println!(
        "workload: OCC-4 sample, n = {}, distinct QI vectors = {}\n",
        table.len(),
        table.distinct_qi_count()
    );
    println!(
        "{:>3} {:>9} {:>12} {:>9} {:>9}",
        "l", "algorithm", "stars", "time (s)", "KL"
    );

    let registry = standard_registry();
    for l in [2u32, 4, 8] {
        let mut stars_of = std::collections::HashMap::new();
        for name in ["hilbert", "tp", "tp+", "tds"] {
            let t0 = Instant::now();
            let publication = registry
                .run(name, &table, &Params::new(l))
                .expect("feasible workload");
            let secs = t0.elapsed().as_secs_f64();
            let kl = kl_divergence(&table, &publication);
            println!(
                "{l:>3} {name:>9} {:>12} {secs:>9.3} {kl:>9.4}",
                publication.star_count()
            );
            stars_of.insert(name, publication.star_count());
        }
        println!();
        assert!(stars_of["tp+"] <= stars_of["tp"], "§5.6 dominance");
    }
}
