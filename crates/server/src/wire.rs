//! The JSON wire format shared by the server and the CLI's
//! `--format json` outputs.
//!
//! The vendored `serde` is an offline marker stub (no serialization
//! code), so this module carries a small self-contained JSON value type
//! ([`Json`]) plus the canonical renderings of the workspace's response
//! shapes: publication summaries, dataset statistics, mechanism listings
//! and errors. Keeping them here — rather than ad-hoc `format!` strings
//! in each caller — is what makes `ldiv anonymize --format json` and
//! `POST /anonymize` byte-identical for the same run.
//!
//! Rendering is deterministic: object fields keep insertion order, floats
//! use Rust's shortest round-trip form, and non-finite floats (which JSON
//! cannot represent) become `null`.

use ldiv_api::{LdivError, MechanismRegistry, Params, Publication};
use ldiv_metrics::PublicationSummary;
use ldiv_microdata::Table;
use std::fmt;

/// A JSON value with deterministic, insertion-ordered rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept exact; JSON numbers are decimal anyway).
    Int(i64),
    /// A float; NaN/∞ render as `null`.
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Fields render in insertion order, making output stable
    /// for tests, caches and diffs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a field on an object, builder-style.
    ///
    /// # Panics
    /// Panics when `self` is not an object — wire shapes are built
    /// statically, so a mis-typed receiver is a programming error.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Adds (or replaces) a field on an object in place.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        let Json::Obj(fields) = self else {
            panic!("Json::set on a non-object");
        };
        let value = value.into();
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value,
            None => fields.push((key.to_string(), value)),
        }
    }

    /// Looks a field up on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The rendered JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Parses JSON text back into a [`Json`] value — `None` on any
    /// syntax error or trailing garbage.
    ///
    /// This exists for one job: reloading persisted publication-cache
    /// entries (rendered by [`render`](Json::render)) into the in-memory
    /// cache at startup. Because rendering is deterministic, a
    /// parse-then-render round-trip of anything this module rendered
    /// reproduces the original bytes; numbers without `.`/`e` load as
    /// [`Json::Int`], everything else numeric as [`Json::Float`], which
    /// is exactly the split the renderer emits.
    pub fn parse(text: &str) -> Option<Json> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        (p.at == p.bytes.len()).then_some(value)
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // `{:?}` is the shortest representation that parses
                    // back to the same f64 ("0.1", "1.0", "1e300").
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(i64::from(v))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// A hand-rolled recursive-descent JSON reader for [`Json::parse`]. The
/// depth limit bounds stack use on adversarial input (a persisted cache
/// file is operator-owned, but the store directory is still external
/// state and must not be able to overflow the stack).
struct JsonParser<'a> {
    bytes: &'a [u8],
    at: usize,
}

const MAX_JSON_DEPTH: usize = 64;

impl JsonParser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        (self.peek() == Some(b)).then(|| self.at += 1)
    }

    fn eat_word(&mut self, word: &str) -> Option<()> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self, depth: usize) -> Option<Json> {
        if depth > MAX_JSON_DEPTH {
            return None;
        }
        match self.peek()? {
            b'n' => self.eat_word("null").map(|()| Json::Null),
            b't' => self.eat_word("true").map(|()| Json::Bool(true)),
            b'f' => self.eat_word("false").map(|()| Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => {
                self.at += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat(b']').is_some() {
                    return Some(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    if self.eat(b',').is_some() {
                        continue;
                    }
                    self.eat(b']')?;
                    return Some(Json::Arr(items));
                }
            }
            b'{' => {
                self.at += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.eat(b'}').is_some() {
                    return Some(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    fields.push((key, self.value(depth + 1)?));
                    self.skip_ws();
                    if self.eat(b',').is_some() {
                        continue;
                    }
                    self.eat(b'}')?;
                    return Some(Json::Obj(fields));
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.at += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.at += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.bytes.get(self.at + 1..self.at + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            // Surrogates never appear in our own output
                            // (the renderer only \u-escapes controls);
                            // degrade them rather than reject.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        _ => return None,
                    }
                    self.at += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.at..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.at;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).ok()?;
        if text.is_empty() {
            return None;
        }
        if text.bytes().any(|b| matches!(b, b'.' | b'e' | b'E')) {
            text.parse().ok().map(Json::Float)
        } else {
            text.parse().ok().map(Json::Int)
        }
    }
}

/// Writes `s` as a quoted, escaped JSON string.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The hex form used for dataset fingerprints on the wire
/// (`"a1b2c3d4e5f60718"`). A string, because JSON numbers cannot carry a
/// full u64 without precision loss in common consumers.
pub fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// The `params` sub-object of a publication response. The shard count
/// appears in its **resolved** form (auto spelled out), matching what
/// [`Params::canonical`] bakes into the cache key. On degenerate
/// inputs the sharding driver may run fewer shards than requested
/// (a K-way split of an n < K-row table); the stitch note in `notes`
/// records the effective count.
pub fn params_json(params: &Params) -> Json {
    Json::obj()
        .field("l", params.l)
        .field("fanout", params.fanout)
        .field("shards", params.resolved_shards())
        .field("canonical", params.canonical())
}

/// The canonical JSON summary of one publication run — the body of
/// `POST /anonymize`, one element of `POST /sweep`, and the CLI's
/// `anonymize --format json` output.
///
/// Stars follow the workspace accounting: suppression payloads report
/// their real counts; boxes/anatomy/recoding report zero and are measured
/// by `kl_divergence` instead. The `cached` field is `false` here; the
/// server flips it on cache hits.
pub fn publication_json(
    table: &Table,
    publication: &Publication,
    params: &Params,
    kl: f64,
) -> Json {
    let summary = PublicationSummary::of_publication(table, publication);
    Json::obj()
        .field("mechanism", publication.mechanism())
        .field("params", params_json(params))
        .field("dataset_fingerprint", fingerprint_hex(table.fingerprint()))
        .field("rows", summary.rows)
        .field("dimensionality", summary.dimensionality)
        .field("groups", summary.groups)
        .field("stars", summary.stars)
        .field("star_ratio", summary.star_ratio)
        .field("suppressed_tuples", summary.suppressed_tuples)
        .field("avg_group_size", summary.avg_group_size)
        .field("max_group_size", summary.max_group_size)
        .field("futile_groups", summary.futile_groups)
        .field("kl_divergence", kl)
        .field(
            "notes",
            Json::Arr(
                publication
                    .notes()
                    .iter()
                    .map(|n| n.as_str().into())
                    .collect(),
            ),
        )
        .field("cached", false)
}

/// Dataset statistics — the CLI's `stats --format json` output.
pub fn table_stats_json(table: &Table) -> Json {
    Json::obj()
        .field("rows", table.len())
        .field("dimensionality", table.dimensionality())
        .field("distinct_sa", table.distinct_sa_count())
        .field("distinct_qi", table.distinct_qi_count())
        .field("max_feasible_l", table.max_feasible_l())
        .field("dataset_fingerprint", fingerprint_hex(table.fingerprint()))
}

/// The `GET /mechanisms` body: every registered mechanism with its
/// description.
pub fn mechanisms_json(registry: &MechanismRegistry) -> Json {
    Json::obj().field(
        "mechanisms",
        Json::Arr(
            registry
                .iter()
                .map(|m| {
                    Json::obj()
                        .field("name", m.name())
                        .field("description", m.description())
                })
                .collect(),
        ),
    )
}

/// A machine-readable error body: `{"error": ..., "kind": ...}`.
pub fn error_json(err: &LdivError) -> Json {
    let kind = match err {
        LdivError::Infeasible(_) => "infeasible",
        LdivError::InvalidL(_) => "invalid_l",
        LdivError::UnknownMechanism { .. } => "unknown_mechanism",
        LdivError::InvalidParams(_) => "invalid_params",
        LdivError::Usage(_) => "usage",
        LdivError::Io(_) => "io",
        LdivError::Algorithm(_) => "algorithm",
        LdivError::Internal(_) => "internal",
        LdivError::DeadlineExceeded => "deadline_exceeded",
    };
    Json::obj()
        .field("error", err.to_string())
        .field("kind", kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldiv_microdata::{samples, Partition};

    #[test]
    fn rendering_is_deterministic_and_escaped() {
        let v = Json::obj()
            .field("a", 1usize)
            .field("b", Json::Arr(vec![Json::Null, true.into(), 0.5.into()]))
            .field("tricky", "a\"b\\c\nd\u{1}");
        assert_eq!(
            v.render(),
            r#"{"a":1,"b":[null,true,0.5],"tricky":"a\"b\\c\nd\u0001"}"#
        );
        // Replacement keeps position.
        assert_eq!(
            v.clone().field("a", 2usize).render(),
            v.render().replace("\"a\":1", "\"a\":2")
        );
    }

    #[test]
    fn parse_round_trips_rendered_output() {
        // The property the persisted-cache reload relies on: parse ∘
        // render is the identity on anything this module renders.
        let t = samples::hospital();
        let partition =
            Partition::new_unchecked(vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]]);
        let p = Publication::suppressed("tp", &t, partition).with_note("phase \"1\"\nline");
        let params = Params::new(2).with_shards(1);
        let kl = ldiv_metrics::kl_divergence(&t, &p);
        for json in [
            publication_json(&t, &p, &params, kl),
            table_stats_json(&t),
            error_json(&LdivError::DeadlineExceeded),
            Json::obj()
                .field("neg", Json::Int(-3))
                .field("big", Json::Float(1e300))
                .field("empty_arr", Json::Arr(vec![]))
                .field("empty_obj", Json::obj())
                .field("null", Json::Null),
        ] {
            let rendered = json.render();
            let parsed = Json::parse(&rendered).expect("rendered JSON parses");
            assert_eq!(parsed, json);
            assert_eq!(parsed.render(), rendered);
        }
    }

    #[test]
    fn parse_rejects_malformed_text() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "{\"a\":1}extra",
            "\"unterminated",
            "\"bad escape \\x\"",
            "--5",
        ] {
            assert!(Json::parse(bad).is_none(), "{bad:?}");
        }
        // Depth bomb: refused, not a stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_none());
        // Whitespace and standard escapes are accepted.
        assert_eq!(
            Json::parse(" { \"a\" : [ 1 , \"\\u0041\\/\" ] } "),
            Some(Json::obj().field("a", Json::Arr(vec![Json::Int(1), "A/".into()])))
        );
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
        assert_eq!(Json::Float(1.0).render(), "1.0");
    }

    #[test]
    fn publication_json_carries_the_summary_fields() {
        let t = samples::hospital();
        let partition =
            Partition::new_unchecked(vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]]);
        let p = Publication::suppressed("tp", &t, partition).with_note("phase 1");
        // Shards pinned: the suite also runs under an LDIV_SHARDS
        // override, which moves the auto form of the canonical string.
        let params = Params::new(2).with_shards(1);
        let kl = ldiv_metrics::kl_divergence(&t, &p);
        let json = publication_json(&t, &p, &params, kl);
        assert_eq!(json.get("mechanism"), Some(&Json::Str("tp".into())));
        assert_eq!(json.get("rows"), Some(&Json::Int(10)));
        assert_eq!(json.get("stars"), Some(&Json::Int(8)));
        assert_eq!(json.get("cached"), Some(&Json::Bool(false)));
        assert_eq!(
            json.get("params").unwrap().get("canonical"),
            Some(&Json::Str("l=2;fanout=2;shards=1".into()))
        );
        assert_eq!(
            json.get("params").unwrap().get("shards"),
            Some(&Json::Int(1))
        );
        let rendered = json.render();
        assert!(rendered.contains("\"notes\":[\"phase 1\"]"), "{rendered}");
        assert!(
            rendered.contains(&format!(
                "\"dataset_fingerprint\":\"{}\"",
                fingerprint_hex(t.fingerprint())
            )),
            "{rendered}"
        );
    }

    #[test]
    fn stats_and_error_shapes() {
        let t = samples::hospital();
        let s = table_stats_json(&t);
        assert_eq!(s.get("rows"), Some(&Json::Int(10)));
        assert_eq!(s.get("max_feasible_l"), Some(&Json::Int(2)));

        let e = error_json(&LdivError::UnknownMechanism {
            requested: "nope".into(),
            known: vec!["tp".into()],
        });
        assert_eq!(e.get("kind"), Some(&Json::Str("unknown_mechanism".into())));
    }
}
