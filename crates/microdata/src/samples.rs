//! The worked example datasets from the paper, usable in tests and docs.
//!
//! [`hospital`] reproduces Table 1 of the paper (ten patients, QI
//! attributes Age/Gender/Education, sensitive attribute Disease) with the
//! exact label spellings the paper uses, so the examples can render the
//! paper's Tables 2 and 3 verbatim.

use crate::{Attribute, Schema, Table, TableBuilder, Value};

/// Age codes used by [`hospital`].
pub const AGE_UNDER_30: Value = 0;
/// `[30, 50)` in the paper's Table 1.
pub const AGE_30_TO_50: Value = 1;
/// `≥ 50` in the paper's Table 1.
pub const AGE_50_PLUS: Value = 2;

/// Gender code `M`.
pub const GENDER_M: Value = 0;
/// Gender code `F`.
pub const GENDER_F: Value = 1;

/// Education code for "High Sch.".
pub const EDU_HIGH_SCHOOL: Value = 0;
/// Education code for "Bachelor".
pub const EDU_BACHELOR: Value = 1;
/// Education code for "Master".
pub const EDU_MASTER: Value = 2;

/// Disease code for HIV.
pub const DIS_HIV: Value = 0;
/// Disease code for pneumonia.
pub const DIS_PNEUMONIA: Value = 1;
/// Disease code for bronchitis.
pub const DIS_BRONCHITIS: Value = 2;
/// Disease code for dyspepsia.
pub const DIS_DYSPEPSIA: Value = 3;

/// Schema of the paper's Table 1.
pub fn hospital_schema() -> Schema {
    Schema::new(
        vec![
            Attribute::with_labels(
                "Age",
                vec!["< 30".into(), "[30, 50)".into(), ">= 50".into()],
            ),
            Attribute::with_labels("Gender", vec!["M".into(), "F".into()]),
            Attribute::with_labels(
                "Education",
                vec!["High Sch.".into(), "Bachelor".into(), "Master".into()],
            ),
        ],
        Attribute::with_labels(
            "Disease",
            vec![
                "HIV".into(),
                "pneumonia".into(),
                "bronchitis".into(),
                "dyspepsia".into(),
            ],
        ),
    )
    .expect("hospital schema is valid")
}

/// The microdata of the paper's Table 1 (rows 0..10 are Adam..Jane).
pub fn hospital() -> Table {
    let mut b = TableBuilder::with_capacity(hospital_schema(), 10);
    let rows: [([Value; 3], Value); 10] = [
        ([AGE_UNDER_30, GENDER_M, EDU_MASTER], DIS_HIV), // 1 Adam
        ([AGE_UNDER_30, GENDER_M, EDU_MASTER], DIS_HIV), // 2 Bob
        ([AGE_UNDER_30, GENDER_M, EDU_BACHELOR], DIS_PNEUMONIA), // 3 Calvin
        ([AGE_30_TO_50, GENDER_M, EDU_BACHELOR], DIS_BRONCHITIS), // 4 Danny
        ([AGE_30_TO_50, GENDER_F, EDU_BACHELOR], DIS_PNEUMONIA), // 5 Eva
        ([AGE_30_TO_50, GENDER_F, EDU_BACHELOR], DIS_BRONCHITIS), // 6 Fiona
        ([AGE_30_TO_50, GENDER_F, EDU_BACHELOR], DIS_BRONCHITIS), // 7 Ginny
        ([AGE_30_TO_50, GENDER_F, EDU_BACHELOR], DIS_PNEUMONIA), // 8 Helen
        ([AGE_50_PLUS, GENDER_F, EDU_HIGH_SCHOOL], DIS_DYSPEPSIA), // 9 Ivy
        ([AGE_50_PLUS, GENDER_F, EDU_HIGH_SCHOOL], DIS_PNEUMONIA), // 10 Jane
    ];
    for (qi, sa) in rows {
        b.push_row(&qi, sa).expect("hospital rows fit schema");
    }
    b.build()
}

/// Names of the ten patients, aligned with row ids, for rendering examples.
pub fn hospital_names() -> [&'static str; 10] {
    [
        "Adam", "Bob", "Calvin", "Danny", "Eva", "Fiona", "Ginny", "Helen", "Ivy", "Jane",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hospital_matches_paper_table_1() {
        let t = hospital();
        assert_eq!(t.len(), 10);
        assert_eq!(t.dimensionality(), 3);
        // m = 4 distinct diseases, pillar = pneumonia (4 occurrences).
        assert_eq!(t.distinct_sa_count(), 4);
        let h = t.sa_histogram();
        assert_eq!(h.count(DIS_PNEUMONIA), 4);
        assert_eq!(h.count(DIS_BRONCHITIS), 3);
        assert_eq!(h.count(DIS_HIV), 2);
        assert_eq!(h.count(DIS_DYSPEPSIA), 1);
        // The paper anonymizes it 2-diversely; check feasibility bound.
        assert_eq!(t.max_feasible_l(), 2);
    }

    #[test]
    fn initial_qi_groups_match_section_5_2() {
        // §5.2: "Initially we have 4 QI-groups: {1,2}, {3}, {4}, {5,6,7,8},
        // {9,10}" (the text says 4 but lists the 5 groups of distinct QI
        // vectors; rows 2 and 3 differ on Age).
        let t = hospital();
        let groups = t.group_by_qi();
        assert_eq!(
            groups,
            vec![vec![0, 1], vec![2], vec![3], vec![4, 5, 6, 7], vec![8, 9]]
        );
    }

    #[test]
    fn labels_render_like_the_paper() {
        let s = hospital_schema();
        assert_eq!(s.qi_attribute(0).label(AGE_30_TO_50), "[30, 50)");
        assert_eq!(s.sensitive().label(DIS_DYSPEPSIA), "dyspepsia");
    }
}
