//! Minimal CSV import/export for microdata tables.
//!
//! The format is deliberately simple: comma-separated with a header line,
//! plus just enough double-quote support to round-trip labels that contain
//! commas (e.g. the paper's age range `[30, 50)`). Cells are matched against
//! attribute labels first and fall back to integer codes.

use crate::{Attribute, MicrodataError, Schema, SuppressedTable, Table, TableBuilder, Value};
use ldiv_exec::Executor;
use std::io::{BufRead, Write};

/// Lines per parallel parsing chunk. Fixed (never derived from the
/// thread count) so the decomposition — and the first error reported —
/// is identical for every budget.
const PARSE_CHUNK: usize = 4_096;

/// Reads a table whose last column is the SA and all other columns are QIs.
/// Uses the auto thread budget for the parse.
///
/// When `schema` is `None`, a schema is inferred: every column becomes a
/// labelled categorical attribute whose domain is the set of distinct cell
/// strings in first-appearance order.
pub fn read_csv<R: BufRead>(reader: R, schema: Option<Schema>) -> Result<Table, MicrodataError> {
    read_csv_with(reader, schema, &Executor::default())
}

/// [`read_csv`] under an explicit thread budget.
///
/// I/O and schema inference stay sequential (inference orders each
/// domain by first appearance, which is inherently a scan); the two
/// per-line passes — cell splitting and label-to-code parsing — fan out
/// over fixed-size line chunks. Results (and the first error, in file
/// order) are identical for every budget.
pub fn read_csv_with<R: BufRead>(
    reader: R,
    schema: Option<Schema>,
    exec: &Executor,
) -> Result<Table, MicrodataError> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| MicrodataError::Csv("empty input".into()))?
        .map_err(|e| MicrodataError::Csv(e.to_string()))?;
    let names: Vec<String> = split_csv_line(&header);
    if names.len() < 2 {
        return Err(MicrodataError::Csv(
            "need at least one QI column and one SA column".into(),
        ));
    }

    // Sequential I/O: collect the non-empty data lines with their file
    // line numbers (for error messages).
    let mut raw_lines: Vec<(usize, String)> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| MicrodataError::Csv(e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        raw_lines.push((lineno + 2, line));
    }

    // Parallel pass 1: split every line into cells, checking arity. Each
    // chunk stops at its first bad line; taking the first error in chunk
    // order reports exactly the first bad line of the file.
    let split: Vec<Result<Vec<Vec<String>>, MicrodataError>> =
        exec.map_chunks(&raw_lines, PARSE_CHUNK, |chunk| {
            chunk
                .iter()
                .map(|(file_line, line)| {
                    let cells = split_csv_line(line);
                    if cells.len() != names.len() {
                        return Err(MicrodataError::Csv(format!(
                            "line {}: expected {} cells, found {}",
                            file_line,
                            names.len(),
                            cells.len()
                        )));
                    }
                    Ok(cells)
                })
                .collect()
        });
    let mut raw_rows: Vec<Vec<String>> = Vec::with_capacity(raw_lines.len());
    for part in split {
        raw_rows.extend(part?);
    }

    let schema = match schema {
        Some(s) => {
            if s.dimensionality() + 1 != names.len() {
                return Err(MicrodataError::Csv(format!(
                    "schema has {} columns but the file has {}",
                    s.dimensionality() + 1,
                    names.len()
                )));
            }
            s
        }
        None => infer_schema(&names, &raw_rows)?,
    };

    // Parallel pass 2: code every cell against the schema.
    type CodedChunk = Result<Vec<(Vec<Value>, Value)>, MicrodataError>;
    let d = schema.dimensionality();
    let schema_ref = &schema;
    let coded: Vec<CodedChunk> = exec.map_chunks(&raw_rows, PARSE_CHUNK, |chunk| {
        chunk
            .iter()
            .map(|cells| {
                let mut qi = vec![0 as Value; d];
                for (i, cell) in cells[..d].iter().enumerate() {
                    qi[i] = parse_cell(schema_ref.qi_attribute(i), cell)?;
                }
                let sa = parse_cell(schema_ref.sensitive(), &cells[d])?;
                Ok((qi, sa))
            })
            .collect()
    });
    let mut builder = TableBuilder::with_capacity(schema.clone(), raw_rows.len());
    for part in coded {
        for (qi, sa) in part? {
            builder.push_row(&qi, sa)?;
        }
    }
    Ok(builder.build())
}

/// Splits one CSV line, honouring double-quoted cells (`""` escapes a quote).
fn split_csv_line(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted && chars.peek() == Some(&'"') => {
                cur.push('"');
                chars.next();
            }
            '"' => quoted = !quoted,
            ',' if !quoted => {
                cells.push(cur.trim().to_string());
                cur = String::new();
            }
            _ => cur.push(c),
        }
    }
    cells.push(cur.trim().to_string());
    cells
}

/// Quotes a cell when it needs quoting.
fn escape_cell(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

fn infer_schema(names: &[String], rows: &[Vec<String>]) -> Result<Schema, MicrodataError> {
    let cols = names.len();
    let mut labels: Vec<Vec<String>> = vec![Vec::new(); cols];
    for row in rows {
        for (c, cell) in row.iter().enumerate() {
            if !labels[c].contains(cell) {
                labels[c].push(cell.clone());
            }
        }
    }
    let mut attrs: Vec<Attribute> = names
        .iter()
        .zip(labels)
        .map(|(n, ls)| {
            // An all-empty column still needs a non-empty domain.
            let ls = if ls.is_empty() {
                vec![String::new()]
            } else {
                ls
            };
            Attribute::with_labels(n.clone(), ls)
        })
        .collect();
    let sensitive = attrs.pop().expect("checked >= 2 columns");
    Schema::new(attrs, sensitive)
}

fn parse_cell(attr: &Attribute, cell: &str) -> Result<Value, MicrodataError> {
    if let Some(code) = attr.code_of(cell) {
        return Ok(code);
    }
    match cell.parse::<u32>() {
        Ok(v) if v < attr.domain_size() => Ok(v as Value),
        _ => Err(MicrodataError::Csv(format!(
            "cell '{}' is not a label or in-domain code for attribute '{}'",
            cell,
            attr.name()
        ))),
    }
}

/// Writes a table as CSV with labelled cells.
pub fn write_table_csv<W: Write>(mut w: W, table: &Table) -> std::io::Result<()> {
    let schema = table.schema();
    let mut header: Vec<String> = schema
        .qi_attributes()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    header.push(schema.sensitive().name().to_string());
    writeln!(w, "{}", header.join(","))?;
    for (_, qi, sa) in table.rows() {
        let mut cells: Vec<String> = qi
            .iter()
            .enumerate()
            .map(|(i, &v)| escape_cell(&schema.qi_attribute(i).label(v)))
            .collect();
        cells.push(escape_cell(&schema.sensitive().label(sa)));
        writeln!(w, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Writes a generalized (suppressed) table as CSV, stars rendered as `*`,
/// rows in source order.
pub fn write_generalized_csv<W: Write>(
    mut w: W,
    table: &Table,
    published: &SuppressedTable,
) -> std::io::Result<()> {
    let schema = table.schema();
    let d = table.dimensionality();
    let mut header: Vec<String> = schema
        .qi_attributes()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    header.push(schema.sensitive().name().to_string());
    writeln!(w, "{}", header.join(","))?;

    // Source-row order: build row -> group index once.
    let mut owner = vec![usize::MAX; table.len()];
    for (gid, g) in published.groups().iter().enumerate() {
        for &r in g.rows() {
            owner[r as usize] = gid;
        }
    }
    for (row, &gid) in owner.iter().enumerate() {
        let mut cells: Vec<String> = Vec::with_capacity(d + 1);
        if gid == usize::MAX {
            // Row not covered by the partition — publish fully suppressed.
            cells.extend(std::iter::repeat_n(STAR.to_string(), d));
        } else {
            let g = &published.groups()[gid];
            for a in 0..d {
                cells.push(match g.value(a) {
                    Some(v) => escape_cell(&schema.qi_attribute(a).label(v)),
                    None => STAR.to_string(),
                });
            }
        }
        cells.push(escape_cell(
            &schema.sensitive().label(table.sa_value(row as u32)),
        ));
        writeln!(w, "{}", cells.join(","))?;
    }
    Ok(())
}

const STAR: &str = crate::generalize::STAR_TEXT;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{samples, Partition};

    #[test]
    fn round_trip_hospital() {
        let t = samples::hospital();
        let mut buf = Vec::new();
        write_table_csv(&mut buf, &t).unwrap();
        let parsed = read_csv(&buf[..], Some(samples::hospital_schema())).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn inferred_schema_round_trip() {
        let csv = "age,zip,disease\nyoung,12,flu\nold,12,cold\nyoung,34,flu\n";
        let t = read_csv(csv.as_bytes(), None).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.dimensionality(), 2);
        assert_eq!(t.schema().qi_attribute(0).domain_size(), 2);
        assert_eq!(t.schema().sensitive().domain_size(), 2);
        // First-appearance coding: young = 0, old = 1.
        assert_eq!(t.qi_value(1, 0), 1);
    }

    #[test]
    fn rejects_ragged_rows() {
        let csv = "a,b\n1,2\n1\n";
        assert!(read_csv(csv.as_bytes(), None).is_err());
    }

    #[test]
    fn rejects_unknown_label_with_schema() {
        let csv = "Age,Gender,Education,Disease\n< 30,M,Master,plague\n";
        let err = read_csv(csv.as_bytes(), Some(samples::hospital_schema())).unwrap_err();
        assert!(matches!(err, MicrodataError::Csv(_)));
    }

    #[test]
    fn generalized_csv_contains_stars() {
        let t = samples::hospital();
        let p = Partition::new(vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]]).unwrap();
        let g = t.generalize(&p);
        let mut buf = Vec::new();
        write_generalized_csv(&mut buf, &t, &g).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 11);
        // Adam's row: Age and Education starred, Gender retained.
        assert_eq!(lines[1], "*,M,*,HIV");
        // Eva's row: untouched.
        assert_eq!(lines[5], "\"[30, 50)\",F,Bachelor,pneumonia");
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(read_csv("".as_bytes(), None).is_err());
    }
}
