//! Adversarial-input mini-fuzz: the parsing surfaces that face raw
//! bytes — the HTTP head parser, `Content-Length` body framing, and the
//! CSV reader — must uphold "error, never panic" on arbitrary input.
//!
//! A seeded LCG drives thousands of byte-level mutations (flips,
//! truncations, insertions, swaps) of valid seeds plus fully random
//! documents, each fed through `catch_unwind`. The generator is
//! deterministic, so a failure reproduces from the printed case index
//! alone.
//!
//! The LDVW binary decoder (`ldiv-wire`) gets the same treatment plus
//! structure-aware adversaries: header length-field lies, version and
//! tag mutations at known offsets, duplicated payload sections — every
//! failure must be a typed `WireError` with stable text, never a panic
//! and never an allocation sized from a declared length.

use ldiversity::microdata::read_csv_with;
use ldiversity::server::http::{parse_request, HttpError};
use ldiversity::wire::{decode, encode, Json, WireError, HEADER_LEN, MAGIC, VERSION};
use ldiversity::Executor;
use std::io::BufReader;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Knuth's MMIX LCG; the high bits are the usable ones.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn below(&mut self, bound: usize) -> usize {
        ((self.next_u64() >> 16) % bound.max(1) as u64) as usize
    }

    fn byte(&mut self) -> u8 {
        (self.next_u64() >> 24) as u8
    }
}

/// One mutation round: start from a seed document and apply 1..=8 random
/// byte edits (replace, insert, delete, truncate, duplicate a span).
fn mutate(rng: &mut Lcg, seed: &[u8]) -> Vec<u8> {
    let mut bytes = seed.to_vec();
    for _ in 0..1 + rng.below(8) {
        if bytes.is_empty() {
            bytes.push(rng.byte());
            continue;
        }
        let at = rng.below(bytes.len());
        match rng.below(5) {
            0 => bytes[at] = rng.byte(),
            1 => bytes.insert(at, rng.byte()),
            2 => {
                bytes.remove(at);
            }
            3 => bytes.truncate(at),
            4 => {
                let end = (at + 1 + rng.below(16)).min(bytes.len());
                let span: Vec<u8> = bytes[at..end].to_vec();
                bytes.splice(at..at, span);
            }
            _ => unreachable!(),
        }
    }
    bytes
}

/// A fully random document, newline-seasoned so line-oriented parsers
/// actually advance.
fn random_doc(rng: &mut Lcg) -> Vec<u8> {
    let len = rng.below(512);
    (0..len)
        .map(|_| if rng.below(8) == 0 { b'\n' } else { rng.byte() })
        .collect()
}

fn assert_no_panic<T>(what: &str, case: usize, input: &[u8], f: impl FnOnce() -> T) {
    if catch_unwind(AssertUnwindSafe(f)).is_err() {
        panic!(
            "{what} panicked on case {case}: {:?}",
            String::from_utf8_lossy(input)
        );
    }
}

const HTTP_SEED: &[u8] =
    b"POST /anonymize?algo=tp%2B&l=3 HTTP/1.1\r\nHost: t\r\nContent-Length: 28\r\n\r\nqi0,qi1,sa\n1,2,flu\n3,4,cold\n";

const CSV_SEED: &[u8] = b"qi0,qi1,qi2,sa\n1,2,3,flu\n4,5,6,cold\n7,8,9,flu\n10,11,12,asthma\n";

#[test]
fn http_parser_errors_but_never_panics_on_mutated_requests() {
    let mut rng = Lcg(0x1d1f_2010);
    for case in 0..3000 {
        let input = if case % 4 == 0 {
            random_doc(&mut rng)
        } else {
            mutate(&mut rng, HTTP_SEED)
        };
        assert_no_panic("parse_request", case, &input, || {
            let _ = parse_request(&mut BufReader::new(&input[..]));
        });
    }
}

/// Targeted `Content-Length` framing adversaries: lies about the body
/// length, overflowing / non-numeric / negative declarations, header
/// floods and over-long lines. Each must produce a clean `HttpError`
/// (the statuses the server maps to 400/413/431/501), never a panic or
/// an unbounded allocation.
#[test]
fn content_length_framing_rejects_lies_cleanly() {
    let cases: Vec<(Vec<u8>, u16)> = vec![
        // Body shorter than declared → truncated-body 400.
        (
            b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\nshort".to_vec(),
            400,
        ),
        // Absurd and overflowing declarations → 413 / 400, no allocation.
        (
            b"POST /x HTTP/1.1\r\nContent-Length: 67108865\r\n\r\n".to_vec(),
            413,
        ),
        (
            b"POST /x HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n\r\n".to_vec(),
            400,
        ),
        (
            b"POST /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n".to_vec(),
            400,
        ),
        (
            b"POST /x HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n".to_vec(),
            400,
        ),
        // Non-DIGIT forms `parse::<usize>` would wave through: a signed
        // declaration and an empty one are framing lies, not numbers.
        (
            b"POST /x HTTP/1.1\r\nContent-Length: +5\r\n\r\nhello".to_vec(),
            400,
        ),
        (
            b"POST /x HTTP/1.1\r\nContent-Length: \r\n\r\n".to_vec(),
            400,
        ),
        // Duplicate Content-Length headers — agreeing or conflicting —
        // are request-smuggling material and refuse to frame.
        (
            b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody".to_vec(),
            400,
        ),
        (
            b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 12\r\n\r\nbody".to_vec(),
            400,
        ),
        // A head cut off mid-header (no terminating newline) must read
        // as truncated, never as a completed blank-line separator.
        (
            b"POST /x HTTP/1.1\r\nContent-Length: 4\r\nX-Tr".to_vec(),
            400,
        ),
        (b"POST /x HTTP/1.1".to_vec(), 400),
        // Chunked framing is declared unsupported, not mis-parsed.
        (
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
            501,
        ),
        // Header flood → bounded rejection.
        (
            {
                let mut doc = b"GET /x HTTP/1.1\r\n".to_vec();
                for i in 0..200 {
                    doc.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
                }
                doc.extend_from_slice(b"\r\n");
                doc
            },
            400,
        ),
        // A newline-free 1 MiB request line → 431, not unbounded buffering.
        (
            {
                let mut doc = b"GET /".to_vec();
                doc.extend(std::iter::repeat_n(b'a', 1 << 20));
                doc
            },
            431,
        ),
    ];
    for (case, (input, expected_status)) in cases.iter().enumerate() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            parse_request(&mut BufReader::new(&input[..]))
        }))
        .unwrap_or_else(|_| panic!("framing case {case} panicked"));
        match result {
            Err(HttpError { status, .. }) => assert_eq!(
                status, *expected_status,
                "framing case {case}: wrong status"
            ),
            Ok(req) => panic!("framing case {case} parsed: {req:?}"),
        }
    }
}

/// The third framing fix from the positive side: `+` is form-encoding
/// for query pairs only, so a literal plus in the path component (the
/// dataset-fingerprint segment, mechanism names like `tp+` percent-land
/// there too) survives parsing undecoded, while query values still read
/// `+` as space and `%2B` as plus in both positions.
#[test]
fn plus_stays_literal_in_the_path_component() {
    let raw =
        b"POST /datasets/a+b/publish?note=a+b&algo=tp%2B HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
    let req = parse_request(&mut BufReader::new(&raw[..])).unwrap();
    assert_eq!(req.path, "/datasets/a+b/publish");
    assert_eq!(
        req.query_param("note"),
        Some("a b"),
        "query pairs keep form-decoding"
    );
    assert_eq!(req.query_param("algo"), Some("tp+"));
}

#[test]
fn csv_reader_errors_but_never_panics_on_mutated_datasets() {
    let mut rng = Lcg(0xc5_7ab1e);
    let exec = Executor::sequential();
    for case in 0..3000 {
        let input = if case % 4 == 0 {
            random_doc(&mut rng)
        } else {
            mutate(&mut rng, CSV_SEED)
        };
        assert_no_panic("read_csv_with", case, &input, || {
            let _ = read_csv_with(BufReader::new(&input[..]), None, &exec);
        });
    }
}

/// Valid LDVW blocks covering every tag, nesting, negative/huge ints,
/// floats, unicode strings and empty containers — the seeds the decoder
/// fuzz mutates.
fn wire_seeds() -> Vec<Vec<u8>> {
    let publication_like = Json::obj()
        .field("mechanism", "tp+")
        .field(
            "params",
            Json::obj()
                .field("l", 3u32)
                .field("fanout", 2u32)
                .field("canonical", "l=3;fanout=2;shards=1"),
        )
        .field("dataset_fingerprint", "a1b2c3d4e5f60718")
        .field("rows", 600u32)
        .field("star_ratio", 0.0375)
        .field("kl_divergence", 0.014285714285714285)
        .field("notes", Json::Arr(vec!["stitch: 2 shards".into()]))
        .field("cached", false);
    let adversarial_values = Json::Arr(vec![
        Json::Null,
        Json::Bool(true),
        Json::Int(i64::MIN),
        Json::Int(i64::MAX),
        Json::Int(-1),
        Json::Float(5e-324),
        Json::Float(-0.0),
        Json::Str("κλ-div \"quoted\" \u{1F512}\n\t".into()),
        Json::Arr(vec![]),
        Json::obj(),
        Json::Arr(vec![Json::Arr(vec![Json::Arr(vec![Json::Int(7)])])]),
    ]);
    vec![
        encode(&publication_like),
        encode(&adversarial_values),
        encode(&Json::obj().field("error", "boom").field("kind", "internal")),
        encode(&Json::Null),
    ]
}

/// ≥5000 structure-aware decoder adversaries: generic byte mutations,
/// truncations at every depth, header length-field lies, version and
/// tag rewrites at known offsets, duplicated payload spans, and fully
/// random documents behind a forged `LDVW` magic. Decoding must return
/// a typed error (or a value) — never panic — and erroring twice must
/// yield the *same* error with stable, non-empty `wire:` text.
#[test]
fn wire_decoder_errors_but_never_panics_under_structure_aware_fuzz() {
    let seeds = wire_seeds();
    let mut rng = Lcg(0x1d5_77ae ^ 0x5eed_0009);
    for case in 0..6000 {
        let seed = &seeds[case % seeds.len()];
        let input: Vec<u8> = match case % 8 {
            // Generic byte-level edits of a valid block.
            0 | 1 => mutate(&mut rng, seed),
            // Truncation at an arbitrary boundary (header included).
            2 => seed[..rng.below(seed.len() + 1)].to_vec(),
            // Header length-field lie: random u32 over bytes 5..9.
            3 => {
                let mut bytes = seed.clone();
                let lie = (rng.next_u64() >> 16) as u32;
                bytes[5..9].copy_from_slice(&lie.to_le_bytes());
                bytes
            }
            // Version rewrite at byte 4.
            4 => {
                let mut bytes = seed.clone();
                bytes[4] = rng.byte();
                bytes
            }
            // Tag/payload rewrite at an offset inside the payload.
            5 => {
                let mut bytes = seed.clone();
                let at = HEADER_LEN + rng.below(bytes.len() - HEADER_LEN);
                bytes[at] = rng.byte();
                bytes
            }
            // Duplicated payload span (sections repeated, length stale).
            6 => {
                let mut bytes = seed.clone();
                let at = HEADER_LEN + rng.below(bytes.len() - HEADER_LEN);
                let end = (at + 1 + rng.below(24)).min(bytes.len());
                let span: Vec<u8> = bytes[at..end].to_vec();
                bytes.splice(at..at, span);
                bytes
            }
            // Random bytes behind a forged magic + version.
            7 => {
                let mut bytes = MAGIC.to_vec();
                bytes.push(VERSION);
                bytes.extend(random_doc(&mut rng));
                bytes
            }
            _ => unreachable!(),
        };
        assert_no_panic("wire::decode", case, &input, || {
            if let Err(err) = decode(&input) {
                // Typed, deterministic, stable: the same input errors
                // identically twice, and the text is the documented
                // `wire:`-prefixed diagnosis, not a Debug dump.
                assert_eq!(decode(&input).unwrap_err(), err, "case {case}");
                let text = err.to_string();
                assert!(text.starts_with("wire: "), "case {case}: {text}");
                assert_eq!(text, err.to_string(), "case {case}: unstable text");
            }
        });
    }
}

/// Declared lengths are never trusted for allocation: a tiny block
/// claiming a ~4-billion-element array (or a huge string) must be
/// rejected as truncated immediately, not buffered first.
#[test]
fn wire_decoder_rejects_declared_length_bombs_without_allocating() {
    // ARR tag + maximal varint count, 7 bytes of payload total.
    let mut arr_bomb = Vec::from(MAGIC);
    arr_bomb.push(VERSION);
    arr_bomb.extend((7u32).to_le_bytes());
    arr_bomb.extend([0x06, 0xff, 0xff, 0xff, 0xff, 0x0f, 0x00]);
    // STR tag + 256 MiB declared length, no content.
    let mut str_bomb = Vec::from(MAGIC);
    str_bomb.push(VERSION);
    str_bomb.extend((6u32).to_le_bytes());
    str_bomb.extend([0x05, 0x80, 0x80, 0x80, 0x80, 0x01]);

    for (bomb, what) in [(arr_bomb, "array"), (str_bomb, "string")] {
        let start = std::time::Instant::now();
        let err = decode(&bomb).expect_err(what);
        assert!(
            matches!(err, WireError::Truncated { .. }),
            "{what} bomb: {err}"
        );
        assert!(
            start.elapsed() < std::time::Duration::from_millis(100),
            "{what} bomb took {:?} — was the declared length allocated?",
            start.elapsed()
        );
    }

    // And the honest baseline still decodes: the guard rejects lies,
    // not real payloads.
    for seed in wire_seeds() {
        assert!(decode(&seed).is_ok());
    }
}

/// The same CSV fuzz through a parallel executor: the chunked parse path
/// must contain worker panics exactly like the sequential one.
#[test]
fn parallel_csv_parse_is_as_unpanicking_as_sequential() {
    let mut rng = Lcg(0x9e3779b97f4a7c15);
    let exec = Executor::new(2);
    for case in 0..500 {
        let input = mutate(&mut rng, CSV_SEED);
        assert_no_panic("read_csv_with(parallel)", case, &input, || {
            let _ = read_csv_with(BufReader::new(&input[..]), None, &exec);
        });
    }
}
