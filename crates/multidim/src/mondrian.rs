//! Mondrian multi-dimensional partitioning for l-diversity.
//!
//! LeFevre, DeWitt, Ramakrishnan (ICDE 2006) — the paper's reference [27]
//! and one of the three state-of-the-art generalization methods its §6.1
//! examined. Mondrian recursively splits the row set like a kd-tree:
//! choose the attribute whose *present* values span the widest normalized
//! range, split at the median value, and recurse while both halves remain
//! private. The original gate is k-anonymity (`|half| ≥ k`); following the
//! paper's adaptation methodology (footnote 3 and §6.1), ours is
//! l-eligibility of both halves.

#[cfg(test)]
use crate::boxes::BoxTable;
use ldiv_exec::Executor;
#[cfg(test)]
use ldiv_microdata::SuppressedTable;
use ldiv_microdata::{Partition, RowId, SaHistogram, Table};

/// Below this many rows a subtree is not worth forking: the split work is
/// `O(rows · d + rows log rows)`, so small subtrees cost less than a
/// thread hand-off.
const FORK_MIN_ROWS: usize = 4_096;

/// Partitions the table with l-diversity-gated Mondrian splits, using
/// the auto thread budget (see [`Executor::new`]).
///
/// Deterministic: candidate attributes are ordered by normalized spread
/// with index tie-break, and median splits put ties on the low side.
/// The thread budget never changes the result — forked subtrees merge in
/// the same low-then-high order the sequential recursion emits.
pub fn mondrian_partition(table: &Table, l: u32) -> Partition {
    mondrian_partition_with(table, l, &Executor::default())
}

/// [`mondrian_partition`] under an explicit thread budget.
///
/// The recursion forks the two halves of a successful split onto the
/// executor ([`Executor::join`]) whenever both subtrees are large enough
/// to amortize the hand-off; `join` returns results in argument order,
/// so the concatenated group list is byte-identical to the sequential
/// run for every budget.
pub fn mondrian_partition_with(table: &Table, l: u32, exec: &Executor) -> Partition {
    assert!(l >= 1, "l must be positive");
    let all: Vec<RowId> = (0..table.len() as RowId).collect();
    if all.is_empty() {
        return Partition::default();
    }
    Partition::new_unchecked(split_recursive(table, l, all, exec))
}

/// Splits `rows` recursively, returning the leaf groups of this subtree
/// in deterministic (low-before-high, depth-first) order.
fn split_recursive(table: &Table, l: u32, rows: Vec<RowId>, exec: &Executor) -> Vec<Vec<RowId>> {
    // The sequential recursion between forks bypasses the executor's
    // loops, so it hosts its own cancellation point: one check per
    // split keeps a deadline-bounded run from descending a deep tree
    // long after its budget elapsed.
    exec.checkpoint();
    let d = table.dimensionality();

    // Attributes ordered by normalized span of present values, widest
    // first (the Mondrian "choose dimension" heuristic).
    let mut spans: Vec<(f64, usize)> = (0..d)
        .map(|a| {
            let mut lo = u16::MAX;
            let mut hi = 0u16;
            for &r in &rows {
                let v = table.qi_value(r, a);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let domain = table.schema().qi_attribute(a).domain_size() as f64;
            (f64::from(hi.saturating_sub(lo)) / domain, a)
        })
        .collect();
    spans.sort_by(|x, y| y.0.total_cmp(&x.0).then(x.1.cmp(&y.1)));

    for &(span, a) in &spans {
        if span == 0.0 {
            break; // no attribute with at least two present values remains
        }
        // Median split on attribute a: low half = values ≤ median of the
        // multiset (ties low).
        let mut values: Vec<u16> = rows.iter().map(|&r| table.qi_value(r, a)).collect();
        values.sort_unstable();
        let median = values[values.len() / 2];
        // Ensure both sides are non-empty: if the median equals the max,
        // step the threshold down to the largest value strictly below it.
        let threshold = if median == *values.last().expect("non-empty") {
            match values.iter().rev().find(|&&v| v < median) {
                Some(&v) => v,
                None => continue, // all values equal (span said otherwise; defensive)
            }
        } else {
            median
        };
        let (low, high): (Vec<RowId>, Vec<RowId>) = rows
            .iter()
            .partition(|&&r| table.qi_value(r, a) <= threshold);
        if low.is_empty() || high.is_empty() {
            continue;
        }
        let low_ok = SaHistogram::of_rows(table, &low).is_l_eligible(l);
        let high_ok = SaHistogram::of_rows(table, &high).is_l_eligible(l);
        if low_ok && high_ok {
            let (mut lo, hi) = if exec.is_parallel() && low.len().min(high.len()) >= FORK_MIN_ROWS {
                exec.join(
                    || split_recursive(table, l, low, exec),
                    || split_recursive(table, l, high, exec),
                )
            } else {
                let lo = split_recursive(table, l, low, exec);
                let hi = split_recursive(table, l, high, exec);
                (lo, hi)
            };
            lo.extend(hi);
            return lo;
        }
    }
    vec![rows]
}

/// The full Mondrian run in every published form — partition, native
/// boxes, suppression rendering. Only tests compare all three at once;
/// the mechanism builds its boxes payload directly.
#[cfg(test)]
pub(crate) fn mondrian_publish(table: &Table, l: u32) -> (Partition, BoxTable, SuppressedTable) {
    let partition = mondrian_partition(table, l);
    let boxed = BoxTable::from_partition(table, &partition);
    let suppressed = table.generalize(&partition);
    (partition, boxed, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldiv_datagen::{sal, AcsConfig};
    use ldiv_microdata::samples;
    use proptest::prelude::*;

    #[test]
    fn hospital_partition_is_l_diverse_and_splits() {
        let t = samples::hospital();
        let (p, boxed, suppressed) = mondrian_publish(&t, 2);
        p.validate_cover(&t).unwrap();
        assert!(p.is_l_diverse(&t, 2));
        assert!(boxed.is_l_diverse(&t, 2));
        assert!(suppressed.is_l_diverse(&t, 2));
        // The hospital table splits at least once (it is not one block).
        assert!(p.group_count() >= 2, "groups = {}", p.group_count());
    }

    #[test]
    fn infeasible_split_keeps_single_group() {
        // All-same SA forces l = 1 only; with l = 1 every split is allowed
        // down to singletons, with l = 2 the table is infeasible and the
        // function is simply never gated — construct a 2-eligible table
        // that cannot split: two rows with identical SA... that is NOT
        // 2-eligible. Use 4 rows: (sa 0, sa 1) × 2 with QI forcing any
        // axis split to separate the pairs unevenly.
        let t = {
            use ldiv_microdata::{Attribute, Schema, TableBuilder};
            let schema =
                Schema::new(vec![Attribute::new("a", 4)], Attribute::new("sa", 2)).unwrap();
            let mut b = TableBuilder::new(schema);
            // Values 0,1,2,3 with SA 0,0,1,1: the median split (≤ 1) gives
            // halves {0,0} and {1,1} — homogeneous, rejected; other
            // thresholds likewise. No valid split exists.
            b.push_row(&[0], 0).unwrap();
            b.push_row(&[1], 0).unwrap();
            b.push_row(&[2], 1).unwrap();
            b.push_row(&[3], 1).unwrap();
            b.build()
        };
        let p = mondrian_partition(&t, 2);
        assert_eq!(p.group_count(), 1);
        assert!(p.is_l_diverse(&t, 2));
    }

    #[test]
    fn splits_reduce_imprecision_monotonically_vs_single_group() {
        let t = sal(&AcsConfig {
            rows: 2_000,
            seed: 31,
        })
        .project(&[0, 1, 5])
        .unwrap();
        for l in [2u32, 5] {
            let (p, boxed, _) = mondrian_publish(&t, l);
            assert!(p.is_l_diverse(&t, l));
            let single = BoxTable::from_partition(
                &t,
                &Partition::new_unchecked(vec![(0..t.len() as RowId).collect()]),
            );
            assert!(boxed.imprecision() < single.imprecision());
            assert!(boxed.kl_divergence(&t) < single.kl_divergence(&t));
        }
    }

    #[test]
    fn native_boxes_dominate_own_suppression_rendering() {
        // §6.2 dominance on Mondrian's own output.
        let t = sal(&AcsConfig {
            rows: 1_500,
            seed: 32,
        })
        .project(&[0, 3])
        .unwrap();
        let (_, boxed, suppressed) = mondrian_publish(&t, 3);
        let kl_box = boxed.kl_divergence(&t);
        let kl_star = ldiv_metrics::kl_divergence_suppressed(&t, &suppressed);
        assert!(kl_box <= kl_star + 1e-9, "{kl_box} vs {kl_star}");
    }

    #[test]
    fn deterministic() {
        let t = sal(&AcsConfig {
            rows: 1_000,
            seed: 33,
        })
        .project(&[0, 2, 5])
        .unwrap();
        let a = mondrian_partition(&t, 3);
        let b = mondrian_partition(&t, 3);
        assert_eq!(a.groups(), b.groups());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random l-eligible tables always yield valid l-diverse Mondrian
        /// partitions covering every row.
        #[test]
        fn random_tables_produce_valid_partitions(
            sa in proptest::collection::vec(0u16..5, 4..50),
            qi_a in proptest::collection::vec(0u16..6, 4..50),
            qi_b in proptest::collection::vec(0u16..6, 4..50),
            l in 2u32..4,
        ) {
            use ldiv_microdata::{Attribute, Schema, TableBuilder};
            let n = sa.len().min(qi_a.len()).min(qi_b.len());
            let schema = Schema::new(
                vec![Attribute::new("a", 6), Attribute::new("b", 6)],
                Attribute::new("sa", 5),
            ).unwrap();
            let mut b = TableBuilder::new(schema);
            for i in 0..n {
                b.push_row(&[qi_a[i], qi_b[i]], sa[i]).unwrap();
            }
            let t = b.build();
            prop_assume!(t.check_l_feasible(l).is_ok());
            let (p, boxed, _) = mondrian_publish(&t, l);
            p.validate_cover(&t).unwrap();
            prop_assert!(p.is_l_diverse(&t, l));
            // Every row lies inside its group's box.
            for g in boxed.groups() {
                for &r in &g.rows {
                    for (range, &v) in g.ranges.iter().zip(t.qi_row(r)) {
                        prop_assert!(range.contains(v));
                    }
                }
            }
        }
    }
}
