//! Regenerates the paper's Figure 2 (average stars vs l).
//!
//! Usage: `cargo run --release -p ldiv-bench --bin fig2 -- [options]`
//! (see `HarnessConfig::usage` for options; `--paper` = published scale).
//!
//! `--json` switches to the machine-readable report: the same sweep with
//! KL enabled plus a per-run stage decomposition (mechanism + KL span
//! totals) on stdout — the source of the committed `BENCH_fig2.json`.

use ldiv_bench::{experiments, HarnessConfig};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let cfg = match HarnessConfig::from_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n{} [--json]", HarnessConfig::usage());
            std::process::exit(2);
        }
    };
    if json {
        println!("{}", experiments::fig2_json(&cfg).render());
    } else {
        let reports = experiments::fig2(&cfg);
        experiments::emit(&reports, &cfg);
    }
}
