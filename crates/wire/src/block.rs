//! The LDVW compact binary block codec.
//!
//! A block is a 9-byte header (`b"LDVW"` magic, one version byte, a
//! little-endian `u32` payload length) followed by exactly one tagged
//! value. The encoder is infallible for every value the workspace
//! produces; the decoder is one-pass, bounds-checked and total — any
//! input, however hostile, yields either the value or a typed
//! [`WireError`] with stable text. In particular the decoder never
//! allocates from a declared length or count before verifying that many
//! bytes actually remain, so a length lie costs an error, not memory.

use crate::json::Json;
use std::fmt;

/// The four magic bytes every block starts with.
pub const MAGIC: [u8; 4] = *b"LDVW";
/// The current (and only) format version.
pub const VERSION: u8 = 1;
/// Header size: magic (4) + version (1) + payload length (4).
pub const HEADER_LEN: usize = 9;
/// Maximum container nesting the decoder accepts; mirrors the JSON
/// parser's depth bound so neither face can build a value the other
/// refuses.
pub const MAX_WIRE_DEPTH: usize = 64;

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_INT: u8 = 0x03;
const TAG_FLOAT: u8 = 0x04;
const TAG_STR: u8 = 0x05;
const TAG_ARR: u8 = 0x06;
const TAG_OBJ: u8 = 0x07;

/// A typed decode failure. Every variant carries enough position
/// information to point at the offending byte, and `Display` text is
/// stable — the fuzz harness asserts the same input always produces the
/// same error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input does not start with the `b"LDVW"` magic.
    BadMagic,
    /// The version byte is not one this decoder understands.
    UnsupportedVersion(
        /// The version byte found in the header.
        u8,
    ),
    /// The input ended before the value did.
    Truncated {
        /// Absolute byte offset at which input ran out.
        at: usize,
    },
    /// The header-declared payload length disagrees with the bytes the
    /// value actually occupies.
    LengthMismatch {
        /// Payload length declared in the header.
        declared: usize,
        /// Bytes the decoded value actually consumed.
        actual: usize,
    },
    /// Bytes follow the declared payload.
    TrailingBytes {
        /// Absolute byte offset where the surplus begins.
        at: usize,
    },
    /// An unknown value tag.
    BadTag {
        /// The tag byte found.
        tag: u8,
        /// Absolute byte offset of the tag.
        at: usize,
    },
    /// A varint ran past 64 bits (more than 10 bytes, or excess high
    /// bits in the tenth).
    VarintOverflow {
        /// Absolute byte offset where the varint starts.
        at: usize,
    },
    /// A string's bytes are not valid UTF-8.
    BadUtf8 {
        /// Absolute byte offset where the string's bytes start.
        at: usize,
    },
    /// An object declares the same key twice.
    DuplicateKey {
        /// The repeated key.
        key: String,
        /// Absolute byte offset where the repeated key's field starts
        /// (its length varint).
        at: usize,
    },
    /// Container nesting exceeds [`MAX_WIRE_DEPTH`].
    TooDeep {
        /// The depth limit that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "wire: bad magic (expected \"LDVW\")"),
            WireError::UnsupportedVersion(v) => {
                write!(f, "wire: unsupported version {v} (expected {VERSION})")
            }
            WireError::Truncated { at } => write!(f, "wire: truncated input at byte {at}"),
            WireError::LengthMismatch { declared, actual } => write!(
                f,
                "wire: declared payload length {declared} but value occupies {actual} bytes"
            ),
            WireError::TrailingBytes { at } => {
                write!(f, "wire: trailing bytes after payload at byte {at}")
            }
            WireError::BadTag { tag, at } => {
                write!(f, "wire: unknown tag 0x{tag:02x} at byte {at}")
            }
            WireError::VarintOverflow { at } => write!(f, "wire: varint overflow at byte {at}"),
            WireError::BadUtf8 { at } => write!(f, "wire: invalid utf-8 in string at byte {at}"),
            WireError::DuplicateKey { key, at } => {
                write!(f, "wire: duplicate object key {key:?} at byte {at}")
            }
            WireError::TooDeep { limit } => {
                write!(f, "wire: nesting exceeds depth limit {limit}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a value as one LDVW block.
///
/// Non-finite floats encode as the `null` tag, mirroring the JSON
/// renderer, so `decode(encode(x))` always equals the value the JSON
/// face would have produced for the same input.
pub fn encode(value: &Json) -> Vec<u8> {
    let mut payload = Vec::new();
    encode_value(value, &mut payload);
    let len = u32::try_from(payload.len()).expect("wire: payload exceeds u32 framing limit");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes one LDVW block back into a value.
///
/// One pass, fully bounds-checked: never panics, and never allocates
/// capacity from a declared length or count it has not verified against
/// the remaining input.
pub fn decode(bytes: &[u8]) -> Result<Json, WireError> {
    if bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] != MAGIC {
        return Err(WireError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated { at: bytes.len() });
    }
    if bytes[4] != VERSION {
        return Err(WireError::UnsupportedVersion(bytes[4]));
    }
    let declared = u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]) as usize;
    let available = bytes.len() - HEADER_LEN;
    if available < declared {
        return Err(WireError::Truncated { at: bytes.len() });
    }
    if available > declared {
        return Err(WireError::TrailingBytes {
            at: HEADER_LEN + declared,
        });
    }
    let mut r = Reader {
        window: &bytes[HEADER_LEN..],
        at: 0,
    };
    let value = r.value(1)?;
    if r.at != declared {
        return Err(WireError::LengthMismatch {
            declared,
            actual: r.at,
        });
    }
    Ok(value)
}

/// Checks a block without keeping the value.
pub fn validate(bytes: &[u8]) -> Result<(), WireError> {
    decode(bytes).map(|_| ())
}

/// Shape statistics for a decoded block, as reported by [`stats`] and
/// `ldiv wire stats`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockStats {
    /// The header version byte.
    pub version: u8,
    /// Declared (and verified) payload size in bytes.
    pub payload_len: usize,
    /// Total block size including the 9-byte header.
    pub total_len: usize,
    /// Total number of values (every node counts).
    pub values: usize,
    /// Deepest nesting level (the root value is depth 1).
    pub max_depth: usize,
    /// `null` count.
    pub nulls: usize,
    /// Boolean count.
    pub bools: usize,
    /// Integer count.
    pub ints: usize,
    /// Float count.
    pub floats: usize,
    /// String count.
    pub strings: usize,
    /// Array count.
    pub arrays: usize,
    /// Object count.
    pub objects: usize,
}

impl BlockStats {
    /// The stats as a JSON object (the `ldiv wire stats` output shape).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("version", i64::from(self.version))
            .field("payload_len", self.payload_len)
            .field("total_len", self.total_len)
            .field("values", self.values)
            .field("max_depth", self.max_depth)
            .field("nulls", self.nulls)
            .field("bools", self.bools)
            .field("ints", self.ints)
            .field("floats", self.floats)
            .field("strings", self.strings)
            .field("arrays", self.arrays)
            .field("objects", self.objects)
    }
}

/// Decodes a block and tallies its shape.
pub fn stats(bytes: &[u8]) -> Result<BlockStats, WireError> {
    let value = decode(bytes)?;
    let mut s = BlockStats {
        version: bytes[4],
        payload_len: bytes.len() - HEADER_LEN,
        total_len: bytes.len(),
        ..BlockStats::default()
    };
    tally(&value, 1, &mut s);
    Ok(s)
}

/// A human-readable description of a block: header fields, shape
/// tallies, and a two-level outline of the value.
pub fn inspect(bytes: &[u8]) -> Result<String, WireError> {
    let value = decode(bytes)?;
    let mut s = BlockStats {
        version: bytes[4],
        payload_len: bytes.len() - HEADER_LEN,
        total_len: bytes.len(),
        ..BlockStats::default()
    };
    tally(&value, 1, &mut s);
    let mut out = format!(
        "ldvw block: version {}, payload {} bytes, total {} bytes\n\
         values: {} (max depth {}): {} objects, {} arrays, {} strings, \
         {} ints, {} floats, {} bools, {} nulls\n",
        s.version,
        s.payload_len,
        s.total_len,
        s.values,
        s.max_depth,
        s.objects,
        s.arrays,
        s.strings,
        s.ints,
        s.floats,
        s.bools,
        s.nulls,
    );
    outline(&value, 0, None, &mut out);
    Ok(out)
}

fn encode_value(value: &Json, out: &mut Vec<u8>) {
    match value {
        Json::Null => out.push(TAG_NULL),
        Json::Bool(false) => out.push(TAG_FALSE),
        Json::Bool(true) => out.push(TAG_TRUE),
        Json::Int(i) => {
            out.push(TAG_INT);
            push_varint(zigzag(*i), out);
        }
        Json::Float(v) if !v.is_finite() => out.push(TAG_NULL),
        Json::Float(v) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        Json::Str(s) => {
            out.push(TAG_STR);
            push_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Json::Arr(items) => {
            out.push(TAG_ARR);
            push_varint(items.len() as u64, out);
            for item in items {
                encode_value(item, out);
            }
        }
        Json::Obj(fields) => {
            out.push(TAG_OBJ);
            push_varint(fields.len() as u64, out);
            for (key, field) in fields {
                push_varint(key.len() as u64, out);
                out.extend_from_slice(key.as_bytes());
                encode_value(field, out);
            }
        }
    }
}

fn push_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Cursor over the payload window. All offsets in errors are absolute
/// (header included), so they point into the original input.
struct Reader<'a> {
    window: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn abs(&self) -> usize {
        HEADER_LEN + self.at
    }

    fn end_abs(&self) -> usize {
        HEADER_LEN + self.window.len()
    }

    fn remaining(&self) -> usize {
        self.window.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return Err(WireError::Truncated { at: self.end_abs() });
        }
        let slice = &self.window[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn byte(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let start = self.abs();
        let mut value = 0u64;
        for i in 0..10 {
            let byte = self.byte()?;
            // The tenth byte may only contribute the final bit.
            if i == 9 && byte > 0x01 {
                return Err(WireError::VarintOverflow { at: start });
            }
            value |= u64::from(byte & 0x7f) << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(WireError::VarintOverflow { at: start })
    }

    /// Reads a length/count varint, failing fast (and allocation-free)
    /// when it exceeds the bytes that remain — `floor` is the minimum
    /// encoded size per unit (1 for string bytes, 1 per array element,
    /// 2 per object field).
    fn bounded_count(&mut self, floor: usize) -> Result<usize, WireError> {
        let raw = self.varint()?;
        if raw > (self.remaining() / floor.max(1)) as u64 {
            return Err(WireError::Truncated { at: self.end_abs() });
        }
        Ok(raw as usize)
    }

    fn value(&mut self, depth: usize) -> Result<Json, WireError> {
        if depth > MAX_WIRE_DEPTH {
            return Err(WireError::TooDeep {
                limit: MAX_WIRE_DEPTH,
            });
        }
        let tag_at = self.abs();
        match self.byte()? {
            TAG_NULL => Ok(Json::Null),
            TAG_FALSE => Ok(Json::Bool(false)),
            TAG_TRUE => Ok(Json::Bool(true)),
            TAG_INT => Ok(Json::Int(unzigzag(self.varint()?))),
            TAG_FLOAT => {
                let raw = self.take(8)?;
                let bits = u64::from_le_bytes([
                    raw[0], raw[1], raw[2], raw[3], raw[4], raw[5], raw[6], raw[7],
                ]);
                Ok(Json::Float(f64::from_bits(bits)))
            }
            TAG_STR => Ok(Json::Str(self.string()?)),
            TAG_ARR => {
                let count = self.bounded_count(1)?;
                let mut items = Vec::new();
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Json::Arr(items))
            }
            TAG_OBJ => {
                let count = self.bounded_count(2)?;
                let mut fields: Vec<(String, Json)> = Vec::new();
                for _ in 0..count {
                    let key_at = self.abs();
                    let key = self.string()?;
                    if fields.iter().any(|(k, _)| *k == key) {
                        return Err(WireError::DuplicateKey { key, at: key_at });
                    }
                    let field = self.value(depth + 1)?;
                    fields.push((key, field));
                }
                Ok(Json::Obj(fields))
            }
            tag => Err(WireError::BadTag { tag, at: tag_at }),
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.bounded_count(1)?;
        let at = self.abs();
        let raw = self.take(len)?;
        match std::str::from_utf8(raw) {
            Ok(text) => Ok(text.to_string()),
            Err(_) => Err(WireError::BadUtf8 { at }),
        }
    }
}

fn tally(value: &Json, depth: usize, s: &mut BlockStats) {
    s.values += 1;
    s.max_depth = s.max_depth.max(depth);
    match value {
        Json::Null => s.nulls += 1,
        Json::Bool(_) => s.bools += 1,
        Json::Int(_) => s.ints += 1,
        Json::Float(_) => s.floats += 1,
        Json::Str(_) => s.strings += 1,
        Json::Arr(items) => {
            s.arrays += 1;
            for item in items {
                tally(item, depth + 1, s);
            }
        }
        Json::Obj(fields) => {
            s.objects += 1;
            for (_, field) in fields {
                tally(field, depth + 1, s);
            }
        }
    }
}

fn outline(value: &Json, indent: usize, label: Option<&str>, out: &mut String) {
    let pad = "  ".repeat(indent);
    let head = match label {
        Some(key) => format!("{pad}{key}: "),
        None => pad.clone(),
    };
    match value {
        Json::Obj(fields) => {
            out.push_str(&format!("{head}object ({} fields)\n", fields.len()));
            if indent < 2 {
                for (key, field) in fields {
                    outline(field, indent + 1, Some(key), out);
                }
            }
        }
        Json::Arr(items) => {
            out.push_str(&format!("{head}array ({} items)\n", items.len()));
            if indent < 2 {
                if let Some(first) = items.first() {
                    outline(first, indent + 1, Some("[0]"), out);
                }
                if items.len() > 1 {
                    out.push_str(&format!("{pad}  … {} more items\n", items.len() - 1));
                }
            }
        }
        scalar => {
            let shown = match scalar {
                Json::Str(s) if s.chars().count() > 40 => {
                    let cut: String = s.chars().take(40).collect();
                    format!("string {cut:?}…")
                }
                Json::Str(s) => format!("string {s:?}"),
                Json::Int(i) => format!("int {i}"),
                Json::Float(v) => format!("float {v:?}"),
                Json::Bool(b) => format!("bool {b}"),
                _ => "null".to_string(),
            };
            out.push_str(&format!("{head}{shown}\n"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Json {
        Json::obj()
            .field("mechanism", "tp+")
            .field("l", 3usize)
            .field("ratio", 0.125)
            .field("negative", Json::Int(-42))
            .field(
                "extremes",
                Json::Arr(vec![Json::Int(i64::MIN), Json::Int(i64::MAX), Json::Int(0)]),
            )
            .field(
                "flags",
                Json::Arr(vec![Json::Bool(true), Json::Bool(false), Json::Null]),
            )
            .field("nested", Json::obj().field("text", "héllo \"wörld\"\n"))
    }

    #[test]
    fn round_trip_preserves_values_and_canonical_text() {
        let v = doc();
        let bytes = encode(&v);
        assert_eq!(&bytes[..4], b"LDVW");
        assert_eq!(bytes[4], VERSION);
        let declared = u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]) as usize;
        assert_eq!(declared, bytes.len() - HEADER_LEN);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.render(), v.render());
        validate(&bytes).unwrap();
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let bytes = encode(&Json::Float(bad));
            assert_eq!(decode(&bytes).unwrap(), Json::Null);
        }
        // Finite edge values survive exactly, including negative zero.
        for v in [0.0, -0.0, f64::MIN, f64::MAX, f64::EPSILON, 5e-324] {
            let back = decode(&encode(&Json::Float(v))).unwrap();
            assert_eq!(back, Json::Float(v));
            assert_eq!(back.render(), Json::Float(v).render());
        }
    }

    #[test]
    fn every_error_variant_is_reachable_with_stable_text() {
        // Bad magic.
        let err = decode(b"NOPE\x01\x00\x00\x00\x00").unwrap_err();
        assert_eq!(err, WireError::BadMagic);
        assert_eq!(err.to_string(), "wire: bad magic (expected \"LDVW\")");

        // Unsupported version.
        let err = decode(b"LDVW\x07\x01\x00\x00\x00\x00").unwrap_err();
        assert_eq!(err, WireError::UnsupportedVersion(7));
        assert_eq!(err.to_string(), "wire: unsupported version 7 (expected 1)");

        // Truncated: header cut short, then a payload shorter than declared.
        assert_eq!(
            decode(b"LDVW\x01").unwrap_err(),
            WireError::Truncated { at: 5 }
        );
        let mut bytes = encode(&Json::Str("hello".into()));
        bytes.truncate(bytes.len() - 2);
        assert_eq!(
            decode(&bytes).unwrap_err(),
            WireError::Truncated { at: bytes.len() }
        );

        // Length lie larger than the input: truncated, and instantly —
        // no allocation proportional to the lie.
        let mut lie = encode(&Json::Str("hi".into()));
        lie[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode(&lie).unwrap_err(),
            WireError::Truncated { .. }
        ));

        // Length lie smaller than the value: the window ends mid-value.
        let mut short = encode(&Json::Str("hello".into()));
        let declared = (short.len() - HEADER_LEN - 2) as u32;
        short[5..9].copy_from_slice(&declared.to_le_bytes());
        assert_eq!(
            decode(&short).unwrap_err(),
            WireError::TrailingBytes {
                at: HEADER_LEN + declared as usize
            }
        );

        // Declared length covering a whole extra value: trailing bytes.
        let mut doubled = encode(&Json::Null);
        doubled.push(TAG_NULL);
        assert_eq!(
            decode(&doubled).unwrap_err(),
            WireError::TrailingBytes { at: 10 }
        );

        // Inner under-consumption: declare 2 bytes but the value uses 1.
        let tricky = b"LDVW\x01\x02\x00\x00\x00\x00\x00";
        assert_eq!(
            decode(tricky).unwrap_err(),
            WireError::LengthMismatch {
                declared: 2,
                actual: 1
            }
        );

        // Bad tag.
        let err = decode(b"LDVW\x01\x01\x00\x00\x00\xee").unwrap_err();
        assert_eq!(err, WireError::BadTag { tag: 0xee, at: 9 });
        assert_eq!(err.to_string(), "wire: unknown tag 0xee at byte 9");

        // Varint overflow: eleven continuation bytes.
        let mut overflow = b"LDVW\x01\x0c\x00\x00\x00\x03".to_vec();
        overflow.extend_from_slice(&[0xff; 10]);
        overflow.push(0x01);
        assert_eq!(
            decode(&overflow).unwrap_err(),
            WireError::VarintOverflow { at: 10 }
        );

        // Bad UTF-8 inside a string.
        let bad_utf8 = b"LDVW\x01\x04\x00\x00\x00\x05\x02\xff\xfe";
        assert_eq!(decode(bad_utf8).unwrap_err(), WireError::BadUtf8 { at: 11 });

        // Duplicate object key.
        let dup = Json::Obj(vec![
            ("k".to_string(), Json::Int(1)),
            ("k".to_string(), Json::Int(2)),
        ]);
        // Reported at the *repeated* key's field: header (9) + obj tag,
        // count (2) + first "k" field (4 bytes) = offset 15.
        let err = decode(&encode(&dup)).unwrap_err();
        assert_eq!(
            err,
            WireError::DuplicateKey {
                key: "k".to_string(),
                at: 15
            }
        );
        assert_eq!(
            err.to_string(),
            "wire: duplicate object key \"k\" at byte 15"
        );

        // Depth bomb: nested single-element arrays, hand-framed.
        let mut payload = vec![];
        for _ in 0..(MAX_WIRE_DEPTH + 2) {
            payload.push(TAG_ARR);
            payload.push(0x01);
        }
        payload.push(TAG_NULL);
        let mut deep = b"LDVW\x01".to_vec();
        deep.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        deep.extend_from_slice(&payload);
        assert_eq!(
            decode(&deep).unwrap_err(),
            WireError::TooDeep {
                limit: MAX_WIRE_DEPTH
            }
        );
    }

    #[test]
    fn zigzag_varints_cover_the_integer_range() {
        for n in [
            0i64,
            1,
            -1,
            63,
            -64,
            64,
            i64::MIN,
            i64::MAX,
            1 << 40,
            -(1 << 40),
        ] {
            assert_eq!(unzigzag(zigzag(n)), n);
            assert_eq!(decode(&encode(&Json::Int(n))).unwrap(), Json::Int(n));
        }
        // Small magnitudes stay small on the wire.
        assert_eq!(encode(&Json::Int(0)).len(), HEADER_LEN + 2);
        assert_eq!(encode(&Json::Int(-1)).len(), HEADER_LEN + 2);
    }

    #[test]
    fn stats_and_inspect_summarize_the_block() {
        let bytes = encode(&doc());
        let s = stats(&bytes).unwrap();
        assert_eq!(s.version, VERSION);
        assert_eq!(s.total_len, bytes.len());
        assert_eq!(s.payload_len, bytes.len() - HEADER_LEN);
        assert_eq!(s.objects, 2);
        assert_eq!(s.arrays, 2);
        assert_eq!(s.ints, 5);
        assert_eq!(s.floats, 1);
        assert_eq!(s.strings, 2);
        assert_eq!(s.bools, 2);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.max_depth, 3);
        assert_eq!(
            s.values,
            s.nulls + s.bools + s.ints + s.floats + s.strings + s.arrays + s.objects
        );
        assert_eq!(s.to_json().get("values"), Some(&Json::Int(s.values as i64)));

        let text = inspect(&bytes).unwrap();
        assert!(text.starts_with("ldvw block: version 1"));
        assert!(text.contains("object (7 fields)"));
        assert!(text.contains("mechanism: string \"tp+\""));
        assert!(text.contains("… 2 more items"));
    }
}
