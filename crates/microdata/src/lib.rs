//! Microdata table model and l-diversity primitives.
//!
//! This crate implements Section 3 of *The Hardness and Approximation
//! Algorithms for L-Diversity* (Xiao, Yi, Tao; EDBT 2010): categorical
//! microdata tables with `d` quasi-identifier (QI) attributes and one
//! sensitive attribute (SA), partitions into QI-groups, suppression-based
//! generalization (Definition 1), and l-eligibility (Definition 2).
//!
//! # Model
//!
//! * A [`Schema`] names the QI attributes and the SA and fixes each
//!   categorical domain's cardinality. Values are dense integer codes
//!   `0..domain_size`, mirroring the paper's assumption that SA values come
//!   from `[m] = {1, ..., m}` (we use zero-based codes).
//! * A [`Table`] stores `n` rows in flat, row-major columnar buffers —
//!   `n × d` QI codes plus `n` SA codes — so scans touch contiguous memory.
//! * A [`Partition`] is a disjoint cover of row ids by QI-groups; applying
//!   it with [`generalize`](Table::generalize) yields a
//!   [`SuppressedTable`]: per group, every attribute on which the group is
//!   not uniform is replaced by a star.
//! * [`is_l_eligible`] and friends implement Definition 2 together with the
//!   monotonicity property (Lemma 1) used throughout the algorithms.
//!
//! # Quick example
//!
//! ```
//! use ldiv_microdata::{samples, Partition};
//!
//! let table = samples::hospital(); // Table 1 of the paper
//! // The paper's Table 3: a 2-diverse partition into three QI-groups.
//! let partition = Partition::new(vec![
//!     vec![0, 1, 2, 3],
//!     vec![4, 5, 6, 7],
//!     vec![8, 9],
//! ]).unwrap();
//! assert!(partition.is_l_diverse(&table, 2));
//! let published = table.generalize(&partition);
//! assert_eq!(published.star_count(), 8); // 4 Age stars + 4 Education stars
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod csvio;
mod eligibility;
mod error;
mod fingerprint;
mod generalize;
mod partition;
pub mod principles;
pub mod samples;
mod schema;
mod table;

pub use csvio::{read_csv, read_csv_with, write_generalized_csv, write_table_csv};
pub use eligibility::{is_l_eligible, l_eligible_histogram, max_l_for, SaHistogram};
pub use error::MicrodataError;
pub use fingerprint::Fnv1a;
pub use generalize::{GroupShape, SuppressedTable, STAR_TEXT};
pub use partition::Partition;
pub use schema::{Attribute, Schema};
pub use table::{Table, TableBuilder};

/// Dense categorical code for a QI or SA value.
///
/// Domains in this library are small (the paper's largest is 79, see its
/// Table 6), but `u16` leaves generous head-room for synthetic stress tests.
pub type Value = u16;

/// Row identifier inside a [`Table`] (tables up to 2^32 rows).
pub type RowId = u32;

/// Index of a QI attribute (`0..d`).
pub type AttrId = usize;
