//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::{below, Strategy};
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A target size (or size range) for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            return self.lo;
        }
        self.lo + below(rng, (self.hi - self.lo) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>` with element strategy `S`.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `BTreeSet` of values from `element`, targeting a size drawn from
/// `size` (smaller when the element domain cannot fill it).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut out = BTreeSet::new();
        // Duplicates shrink the yield; cap the attempts so tiny element
        // domains still terminate.
        for _ in 0..target.saturating_mul(8).max(8) {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.sample(rng));
        }
        out
    }
}
