//! Quickstart: generate a synthetic dataset, anonymize it through the
//! `Anonymizer` front door, and inspect the result — then drop one level
//! down for TP's approximation certificate.
//!
//! Run with: `cargo run --release --example quickstart`

use ldiversity::core::{anonymize, SingleGroupResidue};
use ldiversity::datagen::{sal, AcsConfig};
use ldiversity::metrics::PublicationSummary;
use ldiversity::Anonymizer;

fn main() {
    // A 20k-row SAL-like table (sensitive attribute: Income), projected to
    // four QI attributes: Age, Gender, Marital Status, Education.
    let base = sal(&AcsConfig {
        rows: 20_000,
        seed: 7,
    });
    let table = base.project(&[0, 1, 3, 5]).expect("valid projection");
    let l = 6;
    println!(
        "input: n = {}, d = {}, m = {}, distinct QI vectors = {}",
        table.len(),
        table.dimensionality(),
        table.distinct_sa_count(),
        table.distinct_qi_count()
    );

    // The front door: any mechanism by name, one output shape.
    for name in ["tp", "tp+"] {
        let run = Anonymizer::new()
            .l(l)
            .mechanism(name)
            .run(&table)
            .expect("feasible");
        let s = PublicationSummary::of_publication(&table, &run.publication);
        println!(
            "{name:4} {} stars ({:.2}% of QI cells), {} groups, {} suppressed tuples, KL {:.4} [{}]",
            s.stars,
            100.0 * s.star_ratio,
            s.groups,
            s.suppressed_tuples,
            run.kl,
            run.publication.notes().join("; "),
        );
    }

    // One level down: the low-level TP API exposes the approximation
    // certificate — a lower bound on the optimal number of suppressed
    // tuples (Corollary 2) and the ratio this run is guaranteed to satisfy.
    let tp = anonymize(&table, l, &SingleGroupResidue).expect("feasible");
    let stats = &tp.tp.stats;
    println!(
        "certificate: removed {} tuples, optimal needs ≥ {} → ratio ≤ {:.3}",
        stats.removed_total(),
        stats.optimal_lower_bound(),
        stats.certified_ratio()
    );

    assert!(tp.published.is_l_diverse(&table, l));
    println!("publication verified {l}-diverse ✓");
}
