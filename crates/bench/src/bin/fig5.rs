//! Regenerates the paper's Figure 5 (computation time vs d, l = 4).
//!
//! Usage: `cargo run --release -p ldiv-bench --bin fig5 -- [options]`
//! (see `HarnessConfig::usage` for options; `--paper` = published scale).

use ldiv_bench::{experiments, HarnessConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match HarnessConfig::from_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n{}", HarnessConfig::usage());
            std::process::exit(2);
        }
    };
    let reports = experiments::fig5(&cfg);
    experiments::emit(&reports, &cfg);
}
