//! Single-flight coalescing of identical in-flight runs.
//!
//! A burst of identical requests — the exact shape of a popular
//! published dataset — used to anonymize the same table once *per
//! concurrent request*: every miss that arrived while the first was
//! still computing missed again and recomputed. This module keys an
//! in-flight job table by the same [`CacheKey`] the publication cache
//! uses. The first miss becomes the **leader** and computes; every
//! concurrent duplicate becomes a **follower**, parks on a `Condvar`
//! under a `coalesce:wait` span, and receives a clone of the leader's
//! rendered result — byte-identical bodies, one run.
//!
//! Failure propagation is the load-bearing part. A leader that panics
//! or unwinds on an expired deadline must never strand its followers:
//! the leader's closure runs under `catch_unwind`, the payload is
//! classified through [`ldiv_guard::classify_panic`] (the same mapping
//! the request boundaries use — deadline unwinds become
//! `DeadlineExceeded`/504, anything else `Internal`/500), the classified
//! error is published to every follower, and only then is the panic
//! resumed so the leader's own `guarded` boundary sees exactly what it
//! would have seen without coalescing. Followers therefore always wake
//! with a result — never a hang — and errors are per-request values,
//! never cached.
//!
//! Flights are removed from the table *after* the leader has stored its
//! result in the publication cache (the compute closure inserts before
//! returning), so a request that misses the table finds the cache warm.
//! The residual race — probe the cache, miss, and win the key just as
//! the previous leader retires — is closed by the callers' compute
//! closures re-probing the cache under leadership.

use crate::cache::CacheKey;
use crate::wire::Json;
use ldiv_api::LdivError;
use ldiv_guard::classify_panic;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// How [`SingleFlight::join`] resolved a key.
pub enum Outcome {
    /// This request was the leader: it ran the closure itself.
    Led(Result<Json, LdivError>),
    /// This request was a follower: it parked and received a clone of
    /// the leader's result (callers count these into
    /// `ldiv_coalesced_total`).
    Joined(Result<Json, LdivError>),
}

/// One in-flight computation: the slot followers park on.
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

struct FlightState {
    /// `None` while the leader is computing; the published result after.
    result: Option<Result<Json, LdivError>>,
    /// Followers currently parked on `done`.
    waiters: usize,
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState {
                result: None,
                waiters: 0,
            }),
            done: Condvar::new(),
        }
    }
}

/// The in-flight job table: at most one computation per [`CacheKey`] at
/// any instant.
pub struct SingleFlight {
    inflight: Mutex<HashMap<CacheKey, Arc<Flight>>>,
}

impl Default for SingleFlight {
    fn default() -> Self {
        Self::new()
    }
}

impl SingleFlight {
    /// An empty table.
    pub fn new() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Poison recovery, like the publication cache: a panic while the
    /// map lock was held must not wedge every later request. Map
    /// mutations are single insert/remove calls, so the state is
    /// consistent between statements.
    fn lock_map(&self) -> MutexGuard<'_, HashMap<CacheKey, Arc<Flight>>> {
        self.inflight
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lock_flight<'a>(&self, flight: &'a Flight) -> MutexGuard<'a, FlightState> {
        flight
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Keys with a computation currently in flight.
    pub fn in_flight(&self) -> usize {
        self.lock_map().len()
    }

    /// Followers currently parked across all flights — the gauge the
    /// storm tests (and `/stats`) read to know a fan-in has formed.
    pub fn waiting(&self) -> usize {
        let flights: Vec<Arc<Flight>> = self.lock_map().values().cloned().collect();
        flights
            .iter()
            .map(|flight| self.lock_flight(flight).waiters)
            .sum()
    }

    /// Runs `compute` for `key` exactly once across concurrent callers.
    ///
    /// The first caller for a key leads: its closure runs (under
    /// `catch_unwind`), its result is published to every concurrent
    /// caller of the same key, and a panic is re-raised afterwards so
    /// the leader's own isolation boundary classifies it exactly as it
    /// would have without coalescing. Later callers that arrive while
    /// the flight is open park under a `coalesce:wait` span and wake
    /// with a clone of the published result. `label` names the boundary
    /// for panic classification (mirrors the `guarded` label the route
    /// uses).
    pub fn join(
        &self,
        label: &str,
        key: &CacheKey,
        compute: impl FnOnce() -> Result<Json, LdivError>,
    ) -> Outcome {
        let existing = {
            let mut map = self.lock_map();
            match map.get(key) {
                Some(flight) => Some(Arc::clone(flight)),
                None => {
                    map.insert(key.clone(), Arc::new(Flight::new()));
                    None
                }
            }
        };

        let Some(flight) = existing else {
            return Outcome::Led(self.lead(label, key, compute));
        };

        // Follower: park until the leader publishes. The wait is
        // unbounded by design — the leader *always* publishes, because
        // its panics are caught and classified before being resumed, so
        // a deadline or fault on the leader surfaces here as a
        // per-follower 504/500 rather than a hang.
        let _wait = ldiv_obs::span("coalesce:wait");
        let mut state = self.lock_flight(&flight);
        state.waiters += 1;
        while state.result.is_none() {
            state = flight
                .done
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        state.waiters -= 1;
        Outcome::Joined(state.result.clone().expect("woken with a result"))
    }

    /// The leader path: compute, publish to followers, then surface the
    /// closure's own outcome (resuming its panic if it had one).
    fn lead(
        &self,
        label: &str,
        key: &CacheKey,
        compute: impl FnOnce() -> Result<Json, LdivError>,
    ) -> Result<Json, LdivError> {
        let outcome = catch_unwind(AssertUnwindSafe(compute));
        let published = match &outcome {
            Ok(result) => result.clone(),
            Err(payload) => Err(classify_panic(label, payload.as_ref())),
        };
        // Retire the flight before publishing: a new request that misses
        // the table from here on re-probes the warm cache (the compute
        // closure inserted before returning) instead of joining a
        // finished flight.
        let flight = self.lock_map().remove(key);
        if let Some(flight) = flight {
            let mut state = self.lock_flight(&flight);
            state.result = Some(published);
            flight.done.notify_all();
        }
        match outcome {
            Ok(result) => result,
            Err(payload) => resume_unwind(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn key(tag: u64) -> CacheKey {
        CacheKey {
            dataset: tag,
            mechanism: "test".into(),
            params: "l=2;fanout=2;shards=1".into(),
        }
    }

    #[test]
    fn concurrent_joins_run_the_closure_once() {
        let flights = SingleFlight::new();
        let runs = AtomicUsize::new(0);
        let results: Vec<(bool, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let flights = &flights;
                    let runs = &runs;
                    scope.spawn(move || {
                        let outcome = flights.join("test", &key(1), || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough for the
                            // other threads to arrive and park.
                            std::thread::sleep(Duration::from_millis(150));
                            Ok(Json::obj().field("v", 7u32))
                        });
                        match outcome {
                            Outcome::Led(r) => (true, r.unwrap().render()),
                            Outcome::Joined(r) => (false, r.unwrap().render()),
                        }
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let leaders = results.iter().filter(|(led, _)| *led).count();
        // Exactly one leader per generation of the key; stragglers that
        // arrived after the flight retired would lead a new one, but the
        // 150 ms hold makes that window unreachable here.
        assert_eq!(leaders, 1, "exactly one leader must compute");
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        for (_, body) in &results {
            assert_eq!(body, &results[0].1, "followers must get identical bytes");
        }
        assert_eq!(flights.in_flight(), 0);
        assert_eq!(flights.waiting(), 0);
    }

    #[test]
    fn distinct_keys_do_not_serialize() {
        let flights = SingleFlight::new();
        let runs = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let flights = &flights;
                    let runs = &runs;
                    scope.spawn(move || {
                        flights.join("test", &key(i), || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            Ok(Json::obj().field("k", i as i64))
                        })
                    })
                })
                .collect();
            for h in handles {
                let _ = h.join().unwrap();
            }
        });
        assert_eq!(runs.load(Ordering::SeqCst), 4, "distinct keys all run");
    }

    #[test]
    fn leader_panic_reaches_followers_as_a_classified_error() {
        let flights = SingleFlight::new();
        let follower_errors: Vec<LdivError> = std::thread::scope(|scope| {
            let leader = {
                let flights = &flights;
                scope.spawn(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        flights.join("storm", &key(9), || {
                            std::thread::sleep(Duration::from_millis(150));
                            panic!("leader exploded");
                        })
                    }));
                    assert!(outcome.is_err(), "the leader's panic must resume");
                })
            };
            // Give the leader time to open the flight before joining.
            std::thread::sleep(Duration::from_millis(40));
            let followers: Vec<_> = (0..3)
                .map(|_| {
                    let flights = &flights;
                    scope.spawn(move || {
                        match flights
                            .join("storm", &key(9), || panic!("a follower must never compute"))
                        {
                            Outcome::Joined(Err(e)) => e,
                            other => panic!(
                                "follower expected a propagated error, got {:?}",
                                match other {
                                    Outcome::Led(r) => ("led", r),
                                    Outcome::Joined(r) => ("joined", r),
                                }
                            ),
                        }
                    })
                })
                .collect();
            let errors = followers.into_iter().map(|h| h.join().unwrap()).collect();
            leader.join().unwrap();
            errors
        });
        for e in &follower_errors {
            match e {
                LdivError::Internal(msg) => {
                    assert!(msg.contains("leader exploded"), "{msg}");
                    assert!(msg.contains("storm"), "label missing from {msg}");
                }
                other => panic!("expected Internal, got {other:?}"),
            }
        }
        // Errors are never cached and the flight is gone: the next join
        // for the same key leads a fresh computation.
        match flights.join("storm", &key(9), || Ok(Json::obj().field("ok", true))) {
            Outcome::Led(Ok(_)) => {}
            _ => panic!("a retry after a failed flight must lead"),
        }
    }
}
