//! Regenerates every table and figure of the evaluation.
//!
//! Usage: `cargo run --release -p ldiv-bench --bin run_all -- [options]`
//! (see `HarnessConfig::usage` for options; `--paper` = published scale).

use ldiv_bench::{experiments, HarnessConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match HarnessConfig::from_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n{}", HarnessConfig::usage());
            std::process::exit(2);
        }
    };
    let reports = experiments::all(&cfg);
    experiments::emit(&reports, &cfg);
}
