//! Minimum-cost perfect matching and the polynomial-time optimal solver for
//! `m = 2` (Section 4 of the paper).
//!
//! For a table with exactly two distinct SA values, the only useful
//! diversity level is `l = 2`, and the paper observes that an optimal
//! 2-diverse generalization can be found in polynomial time: split the
//! tuples into `S_1` and `S_2` by SA value (2-eligibility forces
//! `|S_1| = |S_2|`), build the complete bipartite graph whose edge
//! `(t_1, t_2)` weighs the stars needed to merge the two tuples into one
//! QI-group, and take a minimum-weight perfect matching.
//!
//! The matching substrate is a from-scratch Hungarian algorithm
//! ([`min_cost_assignment`], `O(n³)`), usable on any square cost matrix.
//! [`optimal_two_diversity`] wraps it into the end-to-end solver, which the
//! test suites use as a ground-truth oracle for the approximation
//! guarantees of the three-phase algorithm.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod hungarian;
mod two_diversity;

pub use hungarian::min_cost_assignment;
pub use two_diversity::{optimal_two_diversity, TwoDiversityError};
