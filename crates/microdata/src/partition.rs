use crate::eligibility::SaHistogram;
use crate::{MicrodataError, RowId, Table};

/// A partition of a table's rows into QI-groups.
///
/// Groups are non-empty and disjoint; together with a [`Table`] a partition
/// determines a generalization per Definition 1 of the paper. Partitions are
/// *not* required to cover every row of the table they are checked against —
/// sub-partitions of a residue set are first-class citizens — but
/// [`Partition::validate_cover`] checks the full-cover property the paper
/// requires for published tables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Partition {
    groups: Vec<Vec<RowId>>,
}

impl Partition {
    /// Builds a partition from groups, rejecting empty groups and duplicate
    /// row ids.
    pub fn new(groups: Vec<Vec<RowId>>) -> Result<Self, MicrodataError> {
        let mut seen = std::collections::HashSet::new();
        for (i, g) in groups.iter().enumerate() {
            if g.is_empty() {
                return Err(MicrodataError::InvalidPartition(format!(
                    "group {i} is empty"
                )));
            }
            for &r in g {
                if !seen.insert(r) {
                    return Err(MicrodataError::InvalidPartition(format!(
                        "row {r} appears in more than one group"
                    )));
                }
            }
        }
        Ok(Partition { groups })
    }

    /// Builds a partition without validation (used by the algorithms, whose
    /// outputs are disjoint by construction; debug builds re-validate).
    pub fn new_unchecked(groups: Vec<Vec<RowId>>) -> Self {
        debug_assert!(Partition::new(groups.clone()).is_ok());
        Partition { groups }
    }

    /// A single group containing the given rows.
    pub fn single_group(rows: Vec<RowId>) -> Result<Self, MicrodataError> {
        Partition::new(vec![rows])
    }

    /// The groups.
    pub fn groups(&self) -> &[Vec<RowId>] {
        &self.groups
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total number of rows covered.
    pub fn covered_rows(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Checks that the partition covers rows `0..table.len()` exactly.
    pub fn validate_cover(&self, table: &Table) -> Result<(), MicrodataError> {
        let n = table.len();
        let mut seen = vec![false; n];
        let mut count = 0usize;
        for g in &self.groups {
            for &r in g {
                let idx = r as usize;
                if idx >= n {
                    return Err(MicrodataError::InvalidPartition(format!(
                        "row {r} out of range (n = {n})"
                    )));
                }
                if seen[idx] {
                    return Err(MicrodataError::InvalidPartition(format!(
                        "row {r} covered twice"
                    )));
                }
                seen[idx] = true;
                count += 1;
            }
        }
        if count != n {
            return Err(MicrodataError::InvalidPartition(format!(
                "{count} of {n} rows covered"
            )));
        }
        Ok(())
    }

    /// Definition 2 lifted to partitions: every group must be l-eligible.
    pub fn is_l_diverse(&self, table: &Table, l: u32) -> bool {
        self.groups
            .iter()
            .all(|g| SaHistogram::of_rows(table, g).is_l_eligible(l))
    }

    /// The largest `l` for which the partition is l-diverse (the minimum
    /// over groups of `floor(|G| / h(G))`).
    pub fn diversity(&self, table: &Table) -> u32 {
        self.groups
            .iter()
            .map(|g| {
                let h = SaHistogram::of_rows(table, g);
                (h.total() / h.max_count().max(1)) as u32
            })
            .min()
            .unwrap_or(u32::MAX)
    }

    /// k-anonymity check (every group has at least `k` rows). Provided for
    /// the baselines' ancestry and comparison experiments.
    pub fn is_k_anonymous(&self, k: usize) -> bool {
        self.groups.iter().all(|g| g.len() >= k)
    }

    /// Extends this partition with the groups of another (e.g. TP's
    /// star-free groups plus a partitioned residue set).
    pub fn extend(&mut self, other: Partition) {
        self.groups.extend(other.groups);
    }

    /// Appends one group.
    pub fn push_group(&mut self, rows: Vec<RowId>) {
        debug_assert!(!rows.is_empty());
        self.groups.push(rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Attribute, Schema, TableBuilder, Value};

    fn table(rows: &[([Value; 2], Value)]) -> Table {
        let schema = Schema::new(
            vec![Attribute::new("a", 8), Attribute::new("b", 8)],
            Attribute::new("sa", 4),
        )
        .unwrap();
        let mut b = TableBuilder::new(schema);
        for (qi, sa) in rows {
            b.push_row(qi, *sa).unwrap();
        }
        b.build()
    }

    #[test]
    fn rejects_empty_group() {
        assert!(Partition::new(vec![vec![0], vec![]]).is_err());
    }

    #[test]
    fn rejects_duplicate_row() {
        assert!(Partition::new(vec![vec![0, 1], vec![1]]).is_err());
    }

    #[test]
    fn validate_cover_detects_missing_rows() {
        let t = table(&[([0, 0], 0), ([1, 1], 1), ([2, 2], 2)]);
        let p = Partition::new(vec![vec![0, 1]]).unwrap();
        assert!(p.validate_cover(&t).is_err());
        let p = Partition::new(vec![vec![0, 1], vec![2]]).unwrap();
        assert!(p.validate_cover(&t).is_ok());
    }

    #[test]
    fn validate_cover_detects_out_of_range() {
        let t = table(&[([0, 0], 0)]);
        let p = Partition::new(vec![vec![0, 5]]).unwrap();
        assert!(p.validate_cover(&t).is_err());
    }

    #[test]
    fn diversity_is_min_over_groups() {
        let t = table(&[
            ([0, 0], 0),
            ([0, 0], 1),
            ([0, 0], 2), // group of 3 distinct: 3-eligible
            ([1, 1], 3),
            ([1, 1], 3), // group with h = 2, size 2: only 1-eligible
        ]);
        let p = Partition::new(vec![vec![0, 1, 2], vec![3, 4]]).unwrap();
        assert_eq!(p.diversity(&t), 1);
        assert!(p.is_l_diverse(&t, 1));
        assert!(!p.is_l_diverse(&t, 2));
    }

    #[test]
    fn k_anonymity_counts_sizes() {
        let p = Partition::new(vec![vec![0, 1], vec![2, 3, 4]]).unwrap();
        assert!(p.is_k_anonymous(2));
        assert!(!p.is_k_anonymous(3));
    }

    #[test]
    fn extend_concatenates_groups() {
        let mut p = Partition::new(vec![vec![0]]).unwrap();
        p.extend(Partition::new(vec![vec![1], vec![2]]).unwrap());
        assert_eq!(p.group_count(), 3);
        assert_eq!(p.covered_rows(), 3);
    }
}
