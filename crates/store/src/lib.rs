//! `ldiv-store` — the persistent, content-fingerprinted dataset store
//! with append ingestion and incremental re-publication.
//!
//! Everything upstream of this crate is one-shot: a table arrives (CSV
//! body or file), gets anonymized, and is forgotten. The store is the
//! step toward serving a live, growing population the ROADMAP names:
//!
//! * **Register once, reference forever.** A dataset is registered by
//!   the FNV-1a fingerprint of its parsed table and lives under
//!   `datasets/<fingerprint>/` as immutable CSV segments plus a
//!   manifest. Clients stop re-shipping the CSV body per request.
//! * **Append-only growth.** New row batches arrive as whole segments
//!   (the `append`/`process` shape of csv-managed's pipeline): written
//!   to a temp file, renamed into place, and only then committed by an
//!   atomic manifest rewrite — a crash mid-append leaves the previous
//!   manifest and at worst an orphan segment file, never a partial
//!   segment in the dataset.
//! * **Incremental re-publication.** `publish` splits the current table
//!   with the *append-stable* SA-stratified plan ([`stable_shard_plan`])
//!   and keys every shard's result by `(mechanism, sub-table
//!   fingerprint, l′, fanout)`. Shards untouched by recent appends have
//!   byte-identical sub-tables, so their persisted records are reloaded
//!   instead of recomputed; only dirty shards run the mechanism, and the
//!   seams are repaired by the same [`Mechanism::repair_merge`] stitch
//!   that gates `--shards`.
//!
//! Reuse is **invisible in the output**: a warm publish returns the
//! same bytes as a cold publish of the same segment history (persisted
//! records store exactly the partition/kind/recoding the stitch
//! consumes — see [`record`]), and a single-shard publish short-circuits
//! to `mechanism.anonymize`, byte-identical to the one-shot path. The
//! incremental-equivalence suite (`tests/incremental_equivalence.rs`)
//! holds both properties as differential gates.
//!
//! Fault injection: ingestion and publication host the same
//! [`ldiv_guard::fault`] entry points as mechanisms, under the names
//! `store:register`, `store:append` and `store:publish`, so `LDIV_FAULT`
//! plans (and the chaos suite) cover the new paths.
//!
//! [`Mechanism::repair_merge`]: ldiv_api::Mechanism::repair_merge

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod plan;
mod record;

pub use plan::stable_shard_plan;

use ldiv_api::{LdivError, Mechanism, Params, Publication};
use ldiv_exec::Executor;
use ldiv_microdata::{read_csv_with, Fnv1a, RowId, Schema, Table, TableBuilder};
use record::ShardRecord;
use std::fmt;
use std::fs;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Errors a store operation can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No dataset registered under the fingerprint (the server maps
    /// this to HTTP 404).
    NotFound(
        /// The unresolved fingerprint.
        u64,
    ),
    /// An on-disk store file failed its integrity check — a bug or
    /// external tampering, never expected in normal operation.
    Corrupt(
        /// What failed, including the path.
        String,
    ),
    /// Any failure from the anonymization stack (parse errors,
    /// infeasibility, deadline, I/O).
    Ldiv(
        /// The underlying error.
        LdivError,
    ),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(fp) => {
                write!(f, "dataset {}: not registered", fingerprint_hex(*fp))
            }
            StoreError::Corrupt(msg) => write!(f, "store corrupt: {msg}"),
            StoreError::Ldiv(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<LdivError> for StoreError {
    fn from(e: LdivError) -> Self {
        StoreError::Ldiv(e)
    }
}

impl From<ldiv_microdata::MicrodataError> for StoreError {
    fn from(e: ldiv_microdata::MicrodataError) -> Self {
        StoreError::Ldiv(e.into())
    }
}

impl From<StoreError> for LdivError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::NotFound(fp) => {
                LdivError::Io(format!("dataset {}: not registered", fingerprint_hex(fp)))
            }
            StoreError::Corrupt(msg) => LdivError::Internal(format!("store corrupt: {msg}")),
            StoreError::Ldiv(inner) => inner,
        }
    }
}

/// The 16-hex-digit form of a fingerprint — directory names on disk and
/// the wire form shared with the server.
pub fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Parses the 16-hex-digit fingerprint form (case-insensitive).
pub fn parse_fingerprint(s: &str) -> Option<u64> {
    (s.len() == 16)
        .then(|| u64::from_str_radix(s, 16).ok())
        .flatten()
}

/// One immutable append batch of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Position in append order (`0` is the registration segment).
    pub index: usize,
    /// Fingerprint of the segment's parsed table (under the dataset
    /// schema).
    pub fingerprint: u64,
    /// Row count.
    pub rows: usize,
}

/// A registered dataset: its identity and segment history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetInfo {
    /// The registration fingerprint (segment 0's table fingerprint) —
    /// the dataset's permanent identity.
    pub fingerprint: u64,
    /// Segments in append order; never empty.
    pub segments: Vec<SegmentInfo>,
}

impl DatasetInfo {
    /// Total rows across all segments.
    pub fn rows(&self) -> usize {
        self.segments.iter().map(|s| s.rows).sum()
    }

    /// Fingerprint of the dataset's *segment history* — the registration
    /// fingerprint chained with every segment fingerprint in order.
    /// This is the cache identity of a publish: two datasets with the
    /// same rows but different append histories publish through
    /// different shard plans only if their histories differ, and the
    /// lineage distinguishes exactly that.
    pub fn lineage(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str("ldiv-store lineage v1");
        h.write_bytes(&self.fingerprint.to_le_bytes());
        for s in &self.segments {
            h.write_bytes(&s.fingerprint.to_le_bytes());
        }
        h.finish()
    }
}

/// Outcome of [`DatasetStore::register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterOutcome {
    /// The dataset's fingerprint.
    pub fingerprint: u64,
    /// Whether this call created the dataset (`false`: it was already
    /// registered — registration is idempotent by content).
    pub created: bool,
    /// Rows in the registration segment.
    pub rows: usize,
}

/// Outcome of [`DatasetStore::append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendOutcome {
    /// The dataset appended to.
    pub dataset: u64,
    /// The new segment.
    pub segment: SegmentInfo,
    /// Dataset rows after the append.
    pub total_rows: usize,
}

/// Per-publish reuse accounting (also accumulated into [`StoreStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishStats {
    /// Segments in the dataset at publish time.
    pub segments: usize,
    /// Shards in the plan.
    pub shards: usize,
    /// Shards whose persisted result was reloaded.
    pub reused: usize,
    /// Shards that ran the mechanism.
    pub computed: usize,
    /// The dataset's lineage fingerprint (see [`DatasetInfo::lineage`]).
    pub lineage: u64,
}

/// Outcome of [`DatasetStore::publish`]: the table that was published
/// (callers need it to render or score the publication), the
/// publication, and the reuse accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishOutcome {
    /// The dataset's current full table.
    pub table: Table,
    /// The l-diverse publication.
    pub publication: Publication,
    /// Reuse accounting.
    pub stats: PublishStats,
}

/// A publication-cache entry persisted by the server (see
/// [`DatasetStore::persist_response`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistedResponse {
    /// The cache key's dataset component.
    pub dataset: u64,
    /// The cache key's mechanism component.
    pub mechanism: String,
    /// The cache key's canonical-params component.
    pub params: String,
    /// The rendered response body.
    pub body: String,
}

/// Monotonic operation counters, mirrored into `/stats` and `/metrics`.
#[derive(Debug, Default)]
struct StoreCounters {
    registers: AtomicU64,
    appends: AtomicU64,
    appended_rows: AtomicU64,
    publishes: AtomicU64,
    shards_computed: AtomicU64,
    shards_reused: AtomicU64,
    responses_persisted: AtomicU64,
}

/// A point-in-time view of the store: on-disk inventory plus operation
/// counters since this process opened the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Registered datasets on disk.
    pub datasets: usize,
    /// Segments on disk across all datasets.
    pub segments: usize,
    /// Rows on disk across all datasets.
    pub rows: usize,
    /// Persisted per-shard results on disk.
    pub shard_records: usize,
    /// Persisted publication-cache entries on disk.
    pub persisted_responses: usize,
    /// `register` calls that created a dataset (this process).
    pub registers: u64,
    /// Successful `append` calls (this process).
    pub appends: u64,
    /// Rows ingested by `append` (this process).
    pub appended_rows: u64,
    /// Successful `publish` calls (this process).
    pub publishes: u64,
    /// Shards that ran the mechanism (this process).
    pub shards_computed: u64,
    /// Shards reloaded from persisted results (this process).
    pub shards_reused: u64,
    /// Publication-cache entries persisted (this process).
    pub responses_persisted: u64,
}

const MANIFEST_MAGIC: &str = "ldiv-store manifest v1";
const RESPONSE_MAGIC: &str = "ldiv-store response v1";

/// The persistent dataset store rooted at a directory.
///
/// ```text
/// <root>/
///   datasets/<fingerprint>/
///     manifest.txt            # the commit record: segment list
///     segments/seg-0000.csv   # immutable raw CSV batches
///     shards/<mech>-<subfp>-l<l>-f<fanout>.rec  # persisted shard results
///   responses/<key>.resp      # persisted publication-cache entries
/// ```
///
/// All mutating writes are temp-file-plus-rename, and a dataset's
/// manifest is rewritten last — the manifest is the commit point, so
/// readers never observe a partially ingested segment.
#[derive(Debug)]
pub struct DatasetStore {
    root: PathBuf,
    counters: StoreCounters,
    /// Serializes register/append (publish only reads the manifest).
    ingest: Mutex<()>,
}

impl DatasetStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<DatasetStore, StoreError> {
        let root = root.into();
        for dir in [root.join("datasets"), root.join("responses")] {
            fs::create_dir_all(&dir).map_err(|e| io_error(&dir, &e))?;
        }
        Ok(DatasetStore {
            root,
            counters: StoreCounters::default(),
            ingest: Mutex::new(()),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Registers a dataset from raw CSV bytes: parses (inferring the
    /// schema), fingerprints, and commits the bytes as segment 0.
    /// Content-addressed and idempotent: re-registering the same content
    /// returns the existing dataset with `created: false`.
    pub fn register(&self, csv: &[u8], exec: &Executor) -> Result<RegisterOutcome, StoreError> {
        ldiv_guard::fault::mechanism_entry("store:register", exec);
        let table = read_csv_with(BufReader::new(csv), None, exec)?;
        if table.is_empty() {
            return Err(LdivError::InvalidParams(
                "a dataset must register with at least one row".into(),
            )
            .into());
        }
        let fingerprint = table.fingerprint();
        let _guard = self.ingest.lock().unwrap_or_else(|p| p.into_inner());
        if self.manifest_path(fingerprint).exists() {
            let info = self.read_manifest(fingerprint)?;
            return Ok(RegisterOutcome {
                fingerprint,
                created: false,
                rows: info.rows(),
            });
        }
        let segments = self.segments_dir(fingerprint);
        fs::create_dir_all(&segments).map_err(|e| io_error(&segments, &e))?;
        let shards = self.shards_dir(fingerprint);
        fs::create_dir_all(&shards).map_err(|e| io_error(&shards, &e))?;
        atomic_write(&segments.join(segment_file(0)), csv)?;
        let info = DatasetInfo {
            fingerprint,
            segments: vec![SegmentInfo {
                index: 0,
                fingerprint,
                rows: table.len(),
            }],
        };
        self.write_manifest(&info)?;
        self.counters.registers.fetch_add(1, Ordering::Relaxed);
        Ok(RegisterOutcome {
            fingerprint,
            created: true,
            rows: table.len(),
        })
    }

    /// Appends a batch of rows (raw CSV with the dataset's header) as a
    /// new immutable segment. The batch is parsed under the dataset's
    /// registered schema: its header must repeat the dataset's column
    /// names and every cell must be a known label or in-domain code —
    /// the append contract is "more rows of the same population", not a
    /// schema migration.
    pub fn append(
        &self,
        fingerprint: u64,
        csv: &[u8],
        exec: &Executor,
    ) -> Result<AppendOutcome, StoreError> {
        ldiv_guard::fault::mechanism_entry("store:append", exec);
        let _guard = self.ingest.lock().unwrap_or_else(|p| p.into_inner());
        let info = self.read_manifest(fingerprint)?;
        let schema = self.dataset_schema(&info, exec)?;
        check_header(csv, &schema)?;
        let batch = read_csv_with(BufReader::new(csv), Some(schema), exec)?;
        if batch.is_empty() {
            return Err(LdivError::InvalidParams("append batch has no rows".into()).into());
        }
        let index = info.segments.len();
        let path = self.segments_dir(fingerprint).join(segment_file(index));
        atomic_write(&path, csv)?;
        let segment = SegmentInfo {
            index,
            fingerprint: batch.fingerprint(),
            rows: batch.len(),
        };
        let mut info = info;
        info.segments.push(segment);
        self.write_manifest(&info)?;
        self.counters.appends.fetch_add(1, Ordering::Relaxed);
        self.counters
            .appended_rows
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        Ok(AppendOutcome {
            dataset: fingerprint,
            segment,
            total_rows: info.rows(),
        })
    }

    /// The segment history of a registered dataset.
    pub fn dataset(&self, fingerprint: u64) -> Result<DatasetInfo, StoreError> {
        self.read_manifest(fingerprint)
    }

    /// Every registered dataset, ordered by fingerprint.
    pub fn datasets(&self) -> Result<Vec<DatasetInfo>, StoreError> {
        let dir = self.root.join("datasets");
        let entries = fs::read_dir(&dir).map_err(|e| io_error(&dir, &e))?;
        let mut fingerprints: Vec<u64> = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_error(&dir, &e))?;
            let name = entry.file_name();
            if let Some(fp) = name.to_str().and_then(parse_fingerprint) {
                if self.manifest_path(fp).exists() {
                    fingerprints.push(fp);
                }
            }
        }
        fingerprints.sort_unstable();
        fingerprints
            .into_iter()
            .map(|fp| self.read_manifest(fp))
            .collect()
    }

    /// Loads a dataset's current full table (all segments concatenated
    /// in append order) plus its segment history.
    ///
    /// Bounded-memory: each segment streams straight off disk through
    /// the chunked `read_csv_with` seam (no whole-file `fs::read`) and
    /// is folded into one incrementally grown table before the next
    /// segment is opened — peak residency is the accumulated output
    /// plus a single segment, never every segment at once. Row ids
    /// renumber sequentially: segment row `i` of segment `s` becomes
    /// global row `offset_s + i`.
    pub fn load_table(
        &self,
        fingerprint: u64,
        exec: &Executor,
    ) -> Result<(Table, DatasetInfo), StoreError> {
        let info = self.read_manifest(fingerprint)?;
        let _load =
            ldiv_obs::span_labeled("store:load", || format!("{} segments", info.segments.len()));
        let single = info.segments.len() == 1;
        let mut schema: Option<Schema> = None;
        let mut builder: Option<TableBuilder> = None;
        let mut only: Option<Table> = None;
        for seg in &info.segments {
            let path = self.segments_dir(fingerprint).join(segment_file(seg.index));
            let file = fs::File::open(&path).map_err(|e| io_error(&path, &e))?;
            let table = read_csv_with(BufReader::new(file), schema.clone(), exec)
                .map_err(|e| StoreError::Corrupt(format!("{}: {e}", path.display())))?;
            if table.len() != seg.rows || table.fingerprint() != seg.fingerprint {
                return Err(StoreError::Corrupt(format!(
                    "{}: segment content disagrees with the manifest",
                    path.display()
                )));
            }
            if schema.is_none() {
                schema = Some(table.schema().clone());
            }
            if single {
                // One segment: its table IS the dataset — no copy.
                only = Some(table);
                break;
            }
            let builder = builder.get_or_insert_with(|| {
                TableBuilder::with_capacity(table.schema().clone(), info.rows())
            });
            for (_, qi, sa) in table.rows() {
                builder.push_row_unchecked(qi, sa);
            }
        }
        if let Some(table) = only {
            return Ok((table, info));
        }
        let builder = builder.ok_or_else(|| {
            StoreError::Corrupt(format!(
                "dataset {} has no segments",
                fingerprint_hex(fingerprint)
            ))
        })?;
        Ok((builder.build(), info))
    }

    /// Publishes the dataset's current table under `params`, reusing
    /// persisted per-shard results where the shard's rows are unchanged
    /// (see the crate docs). The output is byte-for-byte the same
    /// whether every shard is reused, recomputed, or mixed.
    pub fn publish(
        &self,
        fingerprint: u64,
        mechanism: &dyn Mechanism,
        params: &Params,
    ) -> Result<PublishOutcome, StoreError> {
        let exec = params.executor();
        ldiv_guard::fault::mechanism_entry("store:publish", &exec);
        let (table, info) = self.load_table(fingerprint, &exec)?;
        let plan = stable_shard_plan(&table, params.resolved_shards());
        let lineage = info.lineage();
        if plan.len() <= 1 {
            // Single shard: the incremental path IS the one-shot path —
            // same bytes as a direct `mechanism.anonymize`. No record
            // reuse here: a reloaded whole-table result would need a
            // verbatim payload copy to stay byte-identical, and the
            // server's persisted response cache already covers repeats.
            let publication = mechanism.anonymize(&table, params)?;
            self.counters.publishes.fetch_add(1, Ordering::Relaxed);
            self.counters
                .shards_computed
                .fetch_add(1, Ordering::Relaxed);
            return Ok(PublishOutcome {
                table,
                publication,
                stats: PublishStats {
                    segments: info.segments.len(),
                    shards: 1,
                    reused: 0,
                    computed: 1,
                    lineage,
                },
            });
        }
        params.validate_for(&table)?;
        let inner_threads = (exec.threads() / plan.len()).max(1) as u32;
        let name = mechanism.name();
        type ShardRun = Result<(Publication, u32, bool), LdivError>;
        let indexed: Vec<(usize, &Vec<RowId>)> = plan.iter().enumerate().collect();
        let results: Vec<ShardRun> = exec.map(&indexed, |&(i, rows)| {
            let sub = table.select_rows(rows);
            let sub_params = ldiv_shard::shard_params(params, &sub, inner_threads);
            let path = self.record_path(fingerprint, name, &sub, &sub_params);
            if let Some(publication) = self.load_record(&path, name, &sub) {
                let _reuse = ldiv_obs::span_labeled("store:shard", || format!("{name}#{i} reuse"));
                return Ok((
                    ldiv_shard::remap_to_global(publication, rows),
                    sub_params.l,
                    true,
                ));
            }
            let _compute = ldiv_obs::span_labeled("store:shard", || format!("{name}#{i} compute"));
            let publication = mechanism.anonymize(&sub, &sub_params)?;
            self.save_record(&path, &publication, &sub);
            Ok((
                ldiv_shard::remap_to_global(publication, rows),
                sub_params.l,
                false,
            ))
        });
        let mut publications = Vec::with_capacity(plan.len());
        let (mut reused, mut reduced_l) = (0usize, 0usize);
        for result in results {
            let (publication, l, hit) = result?;
            if hit {
                reused += 1;
            }
            if l < params.l {
                reduced_l += 1;
            }
            publications.push(publication);
        }
        let computed = plan.len() - reused;
        let mut publication = mechanism.repair_merge(&table, params, publications)?;
        // Deterministic by design: segment/shard/reduced-l counts are
        // pure functions of the dataset content, never of cache state —
        // a warm publish must stay byte-identical to a cold one.
        publication.push_note(format!(
            "incremental: {} segments, {} shards, {reduced_l} ran below l={}",
            info.segments.len(),
            plan.len(),
            params.l
        ));
        self.counters.publishes.fetch_add(1, Ordering::Relaxed);
        self.counters
            .shards_reused
            .fetch_add(reused as u64, Ordering::Relaxed);
        self.counters
            .shards_computed
            .fetch_add(computed as u64, Ordering::Relaxed);
        Ok(PublishOutcome {
            table,
            publication,
            stats: PublishStats {
                segments: info.segments.len(),
                shards: plan.len(),
                reused,
                computed,
                lineage,
            },
        })
    }

    /// Persists a rendered publication-cache entry so the server's cache
    /// survives a restart. Best-effort durability: an I/O failure is
    /// swallowed (the entry just will not survive), never surfaced into
    /// the request path.
    pub fn persist_response(&self, dataset: u64, mechanism: &str, params: &str, body: &str) {
        let _persist = ldiv_obs::span("store:persist");
        let mut h = Fnv1a::new();
        h.write_bytes(&dataset.to_le_bytes());
        h.write_str(mechanism);
        h.write_str(params);
        let path = self
            .root
            .join("responses")
            .join(format!("{}.resp", fingerprint_hex(h.finish())));
        let text = format!(
            "{RESPONSE_MAGIC}\ndataset {}\nmechanism {mechanism}\nparams {params}\n{body}",
            fingerprint_hex(dataset)
        );
        if atomic_write(&path, text.as_bytes()).is_ok() {
            self.counters
                .responses_persisted
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Loads every persisted publication-cache entry, in stable
    /// (file-name) order. Corrupt entries are skipped.
    pub fn load_responses(&self) -> Vec<PersistedResponse> {
        let dir = self.root.join("responses");
        let Ok(entries) = fs::read_dir(&dir) else {
            return Vec::new();
        };
        let mut paths: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "resp"))
            .collect();
        paths.sort();
        paths
            .into_iter()
            .filter_map(|p| parse_response(&fs::read_to_string(p).ok()?))
            .collect()
    }

    /// A point-in-time inventory + counter snapshot.
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats {
            registers: self.counters.registers.load(Ordering::Relaxed),
            appends: self.counters.appends.load(Ordering::Relaxed),
            appended_rows: self.counters.appended_rows.load(Ordering::Relaxed),
            publishes: self.counters.publishes.load(Ordering::Relaxed),
            shards_computed: self.counters.shards_computed.load(Ordering::Relaxed),
            shards_reused: self.counters.shards_reused.load(Ordering::Relaxed),
            responses_persisted: self.counters.responses_persisted.load(Ordering::Relaxed),
            ..StoreStats::default()
        };
        if let Ok(datasets) = self.datasets() {
            for info in &datasets {
                stats.segments += info.segments.len();
                stats.rows += info.rows();
                if let Ok(entries) = fs::read_dir(self.shards_dir(info.fingerprint)) {
                    stats.shard_records += entries
                        .flatten()
                        .filter(|e| e.path().extension().is_some_and(|x| x == "rec"))
                        .count();
                }
            }
            stats.datasets = datasets.len();
        }
        if let Ok(entries) = fs::read_dir(self.root.join("responses")) {
            stats.persisted_responses = entries
                .flatten()
                .filter(|e| e.path().extension().is_some_and(|x| x == "resp"))
                .count();
        }
        stats
    }

    fn dataset_dir(&self, fp: u64) -> PathBuf {
        self.root.join("datasets").join(fingerprint_hex(fp))
    }

    fn segments_dir(&self, fp: u64) -> PathBuf {
        self.dataset_dir(fp).join("segments")
    }

    fn shards_dir(&self, fp: u64) -> PathBuf {
        self.dataset_dir(fp).join("shards")
    }

    fn manifest_path(&self, fp: u64) -> PathBuf {
        self.dataset_dir(fp).join("manifest.txt")
    }

    fn record_path(&self, fp: u64, mechanism: &str, sub: &Table, sub_params: &Params) -> PathBuf {
        // Content-addressed: the sub-table fingerprint covers schema and
        // rows, so an append that touches the shard moves the key.
        self.shards_dir(fp).join(format!(
            "{mechanism}-{}-l{}-f{}.rec",
            fingerprint_hex(sub.fingerprint()),
            sub_params.l,
            sub_params.fanout
        ))
    }

    fn load_record(&self, path: &Path, mechanism: &str, sub: &Table) -> Option<Publication> {
        let text = fs::read_to_string(path).ok()?;
        let record = ShardRecord::parse(&text)?;
        if record.mechanism != mechanism {
            return None;
        }
        record.to_publication(sub)
    }

    fn save_record(&self, path: &Path, publication: &Publication, sub: &Table) {
        // Best-effort, like response persistence: a failed write only
        // costs a future recompute.
        let record = ShardRecord::from_publication(publication, sub);
        let _ = atomic_write(path, record.serialize().as_bytes());
    }

    fn dataset_schema(&self, info: &DatasetInfo, exec: &Executor) -> Result<Schema, StoreError> {
        let path = self.segments_dir(info.fingerprint).join(segment_file(0));
        let bytes = fs::read(&path).map_err(|e| io_error(&path, &e))?;
        let table = read_csv_with(BufReader::new(&bytes[..]), None, exec)
            .map_err(|e| StoreError::Corrupt(format!("{}: {e}", path.display())))?;
        Ok(table.schema().clone())
    }

    fn read_manifest(&self, fp: u64) -> Result<DatasetInfo, StoreError> {
        let path = self.manifest_path(fp);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NotFound(fp))
            }
            Err(e) => return Err(io_error(&path, &e)),
        };
        parse_manifest(&text, fp)
            .ok_or_else(|| StoreError::Corrupt(format!("{}: malformed manifest", path.display())))
    }

    fn write_manifest(&self, info: &DatasetInfo) -> Result<(), StoreError> {
        let mut text = String::from(MANIFEST_MAGIC);
        text.push('\n');
        for s in &info.segments {
            text.push_str(&format!(
                "segment {} {} {}\n",
                s.index,
                fingerprint_hex(s.fingerprint),
                s.rows
            ));
        }
        atomic_write(&self.manifest_path(info.fingerprint), text.as_bytes())
    }
}

fn segment_file(index: usize) -> String {
    format!("seg-{index:04}.csv")
}

fn io_error(path: &Path, e: &std::io::Error) -> StoreError {
    StoreError::Ldiv(LdivError::Io(format!("{}: {e}", path.display())))
}

fn parse_manifest(text: &str, fp: u64) -> Option<DatasetInfo> {
    let mut lines = text.lines();
    if lines.next()? != MANIFEST_MAGIC {
        return None;
    }
    let mut segments = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next()? != "segment" {
            return None;
        }
        let index: usize = parts.next()?.parse().ok()?;
        let fingerprint = parse_fingerprint(parts.next()?)?;
        let rows: usize = parts.next()?.parse().ok()?;
        if parts.next().is_some() || index != segments.len() || rows == 0 {
            return None;
        }
        segments.push(SegmentInfo {
            index,
            fingerprint,
            rows,
        });
    }
    if segments.is_empty() || segments[0].fingerprint != fp {
        return None;
    }
    Some(DatasetInfo {
        fingerprint: fp,
        segments,
    })
}

fn parse_response(text: &str) -> Option<PersistedResponse> {
    let rest = text.strip_prefix(RESPONSE_MAGIC)?.strip_prefix('\n')?;
    let (dataset_line, rest) = rest.split_once('\n')?;
    let (mechanism_line, rest) = rest.split_once('\n')?;
    let (params_line, body) = rest.split_once('\n')?;
    Some(PersistedResponse {
        dataset: parse_fingerprint(dataset_line.strip_prefix("dataset ")?)?,
        mechanism: mechanism_line.strip_prefix("mechanism ")?.to_string(),
        params: params_line.strip_prefix("params ")?.to_string(),
        body: body.to_string(),
    })
}

/// Validates that an append batch's header repeats the dataset's column
/// names — appends grow the population, they never remap columns.
fn check_header(csv: &[u8], schema: &Schema) -> Result<(), StoreError> {
    let text = std::str::from_utf8(csv)
        .map_err(|_| StoreError::Ldiv(LdivError::Io("append batch is not UTF-8".into())))?;
    let header = text.lines().next().unwrap_or("");
    let cells = split_header(header);
    let mut expected: Vec<String> = schema
        .qi_attributes()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    expected.push(schema.sensitive().name().to_string());
    if cells != expected {
        return Err(LdivError::InvalidParams(format!(
            "append header [{}] does not match the dataset's columns [{}]",
            cells.join(", "),
            expected.join(", ")
        ))
        .into());
    }
    Ok(())
}

/// Minimal CSV header split (double-quote aware), mirroring the reader's
/// cell splitting for the one line the store inspects itself.
fn split_header(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted && chars.peek() == Some(&'"') => {
                cur.push('"');
                chars.next();
            }
            '"' => quoted = !quoted,
            ',' if !quoted => {
                cells.push(std::mem::take(&mut cur).trim().to_string());
            }
            _ => cur.push(c),
        }
    }
    cells.push(cur.trim().to_string());
    cells
}

/// Writes bytes to a unique temp file in the target's directory, then
/// renames into place — concurrent writers race benignly (last rename
/// wins, both contents complete) and a crash leaves at worst an orphan
/// temp file, never a torn target.
fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = path
        .parent()
        .ok_or_else(|| StoreError::Corrupt(format!("{}: no parent directory", path.display())))?;
    let tmp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::write(&tmp, bytes).map_err(|e| io_error(&tmp, &e))?;
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        io_error(path, &e)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldiv_microdata::{samples, write_table_csv};
    use std::sync::atomic::AtomicU32;

    struct TempRoot(PathBuf);

    impl TempRoot {
        fn new(tag: &str) -> TempRoot {
            static SEQ: AtomicU32 = AtomicU32::new(0);
            let dir = std::env::temp_dir().join(format!(
                "ldiv-store-{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&dir);
            TempRoot(dir)
        }
    }

    impl Drop for TempRoot {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn hospital_csv() -> Vec<u8> {
        let mut buf = Vec::new();
        write_table_csv(&mut buf, &samples::hospital()).unwrap();
        buf
    }

    /// A 3-row batch of hospital-schema rows, all in-domain.
    fn batch_csv(seed: u32) -> Vec<u8> {
        let t = samples::hospital();
        let rows: Vec<u32> = (0..3).map(|i| (seed + i) % t.len() as u32).collect();
        let mut buf = Vec::new();
        write_table_csv(&mut buf, &t.select_rows(&rows)).unwrap();
        buf
    }

    #[test]
    fn register_is_content_addressed_and_idempotent() {
        let root = TempRoot::new("register");
        let store = DatasetStore::open(&root.0).unwrap();
        let exec = Executor::sequential();
        let first = store.register(&hospital_csv(), &exec).unwrap();
        assert!(first.created);
        assert_eq!(first.rows, 10);
        // Content-addressed: the fingerprint is that of the parsed
        // table (CSV round-trip re-infers the schema, so it need not
        // match the hand-built sample schema's fingerprint).
        let parsed = read_csv_with(BufReader::new(&hospital_csv()[..]), None, &exec).unwrap();
        assert_eq!(first.fingerprint, parsed.fingerprint());
        let second = store.register(&hospital_csv(), &exec).unwrap();
        assert!(!second.created);
        assert_eq!(second.fingerprint, first.fingerprint);
        assert_eq!(store.stats().datasets, 1);
        assert_eq!(store.stats().registers, 1);
    }

    #[test]
    fn append_extends_the_table_in_order() {
        let root = TempRoot::new("append");
        let store = DatasetStore::open(&root.0).unwrap();
        let exec = Executor::sequential();
        let fp = store.register(&hospital_csv(), &exec).unwrap().fingerprint;
        let out = store.append(fp, &batch_csv(0), &exec).unwrap();
        assert_eq!(out.segment.index, 1);
        assert_eq!(out.segment.rows, 3);
        assert_eq!(out.total_rows, 13);
        let (table, info) = store.load_table(fp, &exec).unwrap();
        assert_eq!(table.len(), 13);
        assert_eq!(info.segments.len(), 2);
        // Appended rows land after the registration rows, in batch
        // order (compare against the store's own parse of segment 0 —
        // batch rows 0..3 repeat registration rows 0..3).
        for (i, r) in [0u32, 1, 2].iter().enumerate() {
            assert_eq!(table.qi_row(10 + i as u32), table.qi_row(*r));
            assert_eq!(table.sa_value(10 + i as u32), table.sa_value(*r));
        }
    }

    #[test]
    fn append_rejects_unknown_dataset_schema_drift_and_empty_batches() {
        let root = TempRoot::new("append-reject");
        let store = DatasetStore::open(&root.0).unwrap();
        let exec = Executor::sequential();
        assert!(matches!(
            store.append(42, &batch_csv(0), &exec),
            Err(StoreError::NotFound(42))
        ));
        let fp = store.register(&hospital_csv(), &exec).unwrap().fingerprint;
        // Wrong header.
        let bad = b"Age,Gender,Schooling,Disease\n< 30,M,Master,flu\n";
        assert!(store.append(fp, bad, &exec).is_err());
        // Out-of-domain label.
        let bad = b"Age,Gender,Education,Disease\n< 30,M,Master,plague\n";
        assert!(store.append(fp, bad, &exec).is_err());
        // Header-only batch.
        let bad = b"Age,Gender,Education,Disease\n";
        assert!(store.append(fp, bad, &exec).is_err());
        // Failed appends never commit a segment.
        assert_eq!(store.dataset(fp).unwrap().segments.len(), 1);
        assert_eq!(store.stats().appends, 0);
    }

    #[test]
    fn lineage_moves_with_every_append() {
        let root = TempRoot::new("lineage");
        let store = DatasetStore::open(&root.0).unwrap();
        let exec = Executor::sequential();
        let fp = store.register(&hospital_csv(), &exec).unwrap().fingerprint;
        let l0 = store.dataset(fp).unwrap().lineage();
        store.append(fp, &batch_csv(0), &exec).unwrap();
        let l1 = store.dataset(fp).unwrap().lineage();
        assert_ne!(l0, l1);
        assert_ne!(l1, fp);
    }

    #[test]
    fn publish_single_shard_matches_direct_anonymize() {
        let root = TempRoot::new("publish-1");
        let store = DatasetStore::open(&root.0).unwrap();
        let exec = Executor::sequential();
        let fp = store.register(&hospital_csv(), &exec).unwrap().fingerprint;
        store.append(fp, &batch_csv(0), &exec).unwrap();
        let params = Params::new(2).with_shards(1);
        let out = store.publish(fp, &ldiv_core::TpMechanism, &params).unwrap();
        let direct =
            ldiv_api::Mechanism::anonymize(&ldiv_core::TpMechanism, &out.table, &params).unwrap();
        assert_eq!(out.publication, direct);
        assert_eq!(out.stats.shards, 1);
        assert_eq!(out.stats.computed, 1);
    }

    #[test]
    fn incremental_publish_reuses_clean_shards_and_stays_byte_identical() {
        let root = TempRoot::new("publish-incr");
        let store = DatasetStore::open(&root.0).unwrap();
        let exec = Executor::sequential();
        let fp = store.register(&hospital_csv(), &exec).unwrap().fingerprint;
        let params = Params::new(2).with_shards(2);
        let mech = ldiv_core::TpMechanism;

        let cold = store.publish(fp, &mech, &params).unwrap();
        assert_eq!(cold.stats.reused, 0);
        assert!(cold.stats.computed >= 1);
        // Warm repeat: every shard reloads, bytes unchanged.
        let warm = store.publish(fp, &mech, &params).unwrap();
        assert_eq!(warm.stats.computed, 0);
        assert_eq!(warm.stats.reused, warm.stats.shards);
        assert_eq!(warm.publication, cold.publication);

        // Grow the dataset, publish again, then compare against a cold
        // store replaying the same history — reuse must be invisible.
        store.append(fp, &batch_csv(0), &exec).unwrap();
        store.append(fp, &batch_csv(3), &exec).unwrap();
        let grown = store.publish(fp, &mech, &params).unwrap();

        let cold_root = TempRoot::new("publish-incr-cold");
        let cold_store = DatasetStore::open(&cold_root.0).unwrap();
        cold_store.register(&hospital_csv(), &exec).unwrap();
        cold_store.append(fp, &batch_csv(0), &exec).unwrap();
        cold_store.append(fp, &batch_csv(3), &exec).unwrap();
        let replay = cold_store.publish(fp, &mech, &params).unwrap();
        assert_eq!(replay.publication, grown.publication);
        assert_eq!(replay.table, grown.table);
        assert_eq!(replay.stats.reused, 0, "cold store has nothing to reuse");
    }

    #[test]
    fn publish_survives_reopening_the_store() {
        let root = TempRoot::new("reopen");
        let exec = Executor::sequential();
        let params = Params::new(2).with_shards(2);
        let fp;
        let before;
        {
            let store = DatasetStore::open(&root.0).unwrap();
            fp = store.register(&hospital_csv(), &exec).unwrap().fingerprint;
            store.append(fp, &batch_csv(0), &exec).unwrap();
            before = store
                .publish(fp, &ldiv_anatomy::AnatomyMechanism, &params)
                .unwrap();
        }
        let store = DatasetStore::open(&root.0).unwrap();
        assert_eq!(store.dataset(fp).unwrap().segments.len(), 2);
        let after = store
            .publish(fp, &ldiv_anatomy::AnatomyMechanism, &params)
            .unwrap();
        assert_eq!(after.publication, before.publication);
        assert_eq!(
            after.stats.computed, 0,
            "persisted shard results must survive a restart"
        );
    }

    #[test]
    fn responses_round_trip() {
        let root = TempRoot::new("responses");
        let store = DatasetStore::open(&root.0).unwrap();
        assert!(store.load_responses().is_empty());
        store.persist_response(7, "tp", "l=2;fanout=2;shards=1", "{\"ok\":true}");
        store.persist_response(7, "tp", "l=2;fanout=2;shards=1", "{\"ok\":true}");
        store.persist_response(9, "tds", "l=3;fanout=2;shards=2", "{\"n\":1}\nmore");
        let loaded = store.load_responses();
        assert_eq!(loaded.len(), 2, "same key overwrites, not duplicates");
        let entry = loaded.iter().find(|r| r.dataset == 9).unwrap();
        assert_eq!(entry.mechanism, "tds");
        assert_eq!(entry.params, "l=3;fanout=2;shards=2");
        assert_eq!(entry.body, "{\"n\":1}\nmore");
        assert_eq!(store.stats().persisted_responses, 2);
    }

    #[test]
    fn corrupt_manifest_is_reported_not_misread() {
        let root = TempRoot::new("corrupt");
        let store = DatasetStore::open(&root.0).unwrap();
        let exec = Executor::sequential();
        let fp = store.register(&hospital_csv(), &exec).unwrap().fingerprint;
        fs::write(store.manifest_path(fp), "not a manifest").unwrap();
        assert!(matches!(store.dataset(fp), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn fingerprint_hex_round_trips() {
        for fp in [0u64, 1, u64::MAX, 0x00ff_a0b1_c2d3_e4f5] {
            assert_eq!(parse_fingerprint(&fingerprint_hex(fp)), Some(fp));
        }
        assert_eq!(parse_fingerprint("xyz"), None);
        assert_eq!(parse_fingerprint("0123"), None);
    }
}
