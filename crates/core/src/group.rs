//! Per-QI-group state for the three-phase algorithm.
//!
//! A group stores its tuples bucketed by SA value in a *compact* parallel
//! layout — the distinct SA values actually present, their multiplicities
//! and their row-id lists — rather than the paper's dense per-group arrays.
//! Group-local SA diversity is at most `min(m, |Q|)` and `m ≤ 50` in every
//! workload the paper evaluates, so linear scans over the entries are
//! effectively constant-time while avoiding a `Θ(s·m)` memory footprint
//! when the table has hundreds of thousands of distinct QI vectors (the
//! exact regime §5.6 worries about). The `inverted` Criterion bench
//! quantifies this trade-off.

use crate::residue::ResidueSet;
use ldiv_microdata::{RowId, Value};

/// One QI-group: tuples sharing a QI vector, bucketed by SA value.
#[derive(Debug, Clone)]
pub struct Group {
    /// Distinct SA values present (paired with `counts` / `rows`).
    sa: Vec<Value>,
    /// Multiplicity per present SA value.
    counts: Vec<u32>,
    /// Row ids per present SA value. Rows are popped from the back.
    rows: Vec<Vec<RowId>>,
    /// Total tuples in the group.
    size: u32,
    /// Cached pillar height `h(Q)`.
    max_count: u32,
}

impl Group {
    /// Builds a group from `(row, sa)` pairs.
    pub fn from_rows(members: impl IntoIterator<Item = (RowId, Value)>) -> Self {
        let mut g = Group {
            sa: Vec::new(),
            counts: Vec::new(),
            rows: Vec::new(),
            size: 0,
            max_count: 0,
        };
        for (row, v) in members {
            match g.sa.iter().position(|&x| x == v) {
                Some(i) => {
                    g.counts[i] += 1;
                    g.rows[i].push(row);
                    g.max_count = g.max_count.max(g.counts[i]);
                }
                None => {
                    g.sa.push(v);
                    g.counts.push(1);
                    g.rows.push(vec![row]);
                    g.max_count = g.max_count.max(1);
                }
            }
            g.size += 1;
        }
        g
    }

    /// Total tuples `|Q|`.
    #[inline]
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Whether the group has been fully drained.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Pillar height `h(Q)`.
    #[inline]
    pub fn pillar_height(&self) -> u32 {
        self.max_count
    }

    /// `h(Q, v)` for one value (linear scan over present values).
    pub fn count(&self, v: Value) -> u32 {
        self.sa
            .iter()
            .position(|&x| x == v)
            .map_or(0, |i| self.counts[i])
    }

    /// Number of distinct SA values present.
    #[inline]
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn distinct(&self) -> usize {
        self.sa.len()
    }

    /// The distinct SA values present (arbitrary order).
    pub fn present_values(&self) -> &[Value] {
        &self.sa
    }

    /// The group's pillar values, ascending.
    pub fn pillars(&self) -> Vec<Value> {
        let mut out: Vec<Value> = self
            .sa
            .iter()
            .zip(&self.counts)
            .filter(|(_, &c)| c == self.max_count)
            .map(|(&v, _)| v)
            .collect();
        out.sort_unstable();
        out
    }

    /// Definition 2: `|Q| ≥ l · h(Q)`.
    #[inline]
    pub fn is_l_eligible(&self, l: u32) -> bool {
        self.size as u64 >= l as u64 * self.max_count as u64
    }

    /// *Thin* per §5.3: `|Q| = l · h(Q)` (assumes the group is l-eligible).
    #[inline]
    pub fn is_thin(&self, l: u32) -> bool {
        self.size as u64 == l as u64 * self.max_count as u64
    }

    /// *Fat* per §5.3: `|Q| ≥ l · h(Q) + 1`.
    #[inline]
    pub fn is_fat(&self, l: u32) -> bool {
        self.size as u64 > l as u64 * self.max_count as u64
    }

    /// *Conflicting* per §5.3: some pillar of `Q` is also a pillar of `R`.
    pub fn is_conflicting(&self, residue: &ResidueSet) -> bool {
        self.sa
            .iter()
            .zip(&self.counts)
            .any(|(&v, &c)| c == self.max_count && residue.is_pillar(v))
    }

    /// *Dead* per §5.3: thin and conflicting. Dead groups cannot lose tuples
    /// without raising `h(R)` or breaking their own eligibility. Empty
    /// groups are vacuously dead.
    pub fn is_dead(&self, l: u32, residue: &ResidueSet) -> bool {
        self.is_empty() || (self.is_thin(l) && self.is_conflicting(residue))
    }

    /// The group's conflicting pillars `C(Q)` (pillars of `Q` that are
    /// pillars of `R`), ascending — the SET-COVER "sets" of phase 3.
    pub fn conflicting_pillars(&self, residue: &ResidueSet) -> Vec<Value> {
        let mut out: Vec<Value> = self
            .sa
            .iter()
            .zip(&self.counts)
            .filter(|(&v, &c)| c == self.max_count && residue.is_pillar(v))
            .map(|(&v, _)| v)
            .collect();
        out.sort_unstable();
        out
    }

    /// Removes one tuple with SA value `v`, returning its row id.
    /// Panics if `v` is absent.
    pub fn remove_one(&mut self, v: Value) -> RowId {
        let i = self
            .sa
            .iter()
            .position(|&x| x == v)
            .expect("removing SA value absent from group");
        let row = self.rows[i].pop().expect("counts/rows in sync");
        let was = self.counts[i];
        self.counts[i] -= 1;
        self.size -= 1;
        if self.counts[i] == 0 {
            self.sa.swap_remove(i);
            self.counts.swap_remove(i);
            self.rows.swap_remove(i);
        }
        if was == self.max_count {
            // The pillar may have shrunk; rescan (bounded by distinct ≤ m).
            self.max_count = self.counts.iter().copied().max().unwrap_or(0);
        }
        row
    }

    /// Removes one tuple from *each* pillar (the thin-group move of phases
    /// 2 and 3), pushing the rows straight into the residue. Returns how
    /// many tuples moved.
    pub fn remove_one_per_pillar(&mut self, residue: &mut ResidueSet) -> usize {
        let pillars = self.pillars();
        for &p in &pillars {
            let row = self.remove_one(p);
            residue.push(row, p);
        }
        pillars.len()
    }

    /// Drains every tuple into the residue (phase-1 shortcut for groups
    /// smaller than `l`, which can only become l-eligible by emptying).
    pub fn drain_into(&mut self, residue: &mut ResidueSet) -> usize {
        let mut moved = 0;
        for (i, &v) in self.sa.iter().enumerate() {
            for &row in &self.rows[i] {
                residue.push(row, v);
                moved += 1;
            }
        }
        self.sa.clear();
        self.counts.clear();
        self.rows.clear();
        self.size = 0;
        self.max_count = 0;
        moved
    }

    /// The remaining row ids (used to emit the final partition).
    pub fn remaining_rows(&self) -> Vec<RowId> {
        let mut out = Vec::with_capacity(self.size as usize);
        for rows in &self.rows {
            out.extend_from_slice(rows);
        }
        out
    }

    /// A value present in the group minimizing `h(R, v)` among those that
    /// are *not* pillars of `R` — the fat-group choice in phase 3 step 2.
    /// Returns `None` when every present value is a pillar of `R` (cannot
    /// happen for an l-eligible group while `R` is not l-eligible; see the
    /// phase-3 analysis).
    pub fn non_residue_pillar_value(&self, residue: &ResidueSet) -> Option<Value> {
        self.sa
            .iter()
            .copied()
            .filter(|&v| !residue.is_pillar(v))
            .min_by_key(|&v| (residue.count(v), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(vals: &[Value]) -> Group {
        Group::from_rows(vals.iter().enumerate().map(|(i, &v)| (i as RowId, v)))
    }

    #[test]
    fn construction_counts() {
        // The §5.3 example Q1 = (3,1,1,2,3): SA 0 ×3, 1 ×1, 2 ×1, 3 ×2, 4 ×3.
        let g = group(&[0, 0, 0, 1, 2, 3, 3, 4, 4, 4]);
        assert_eq!(g.size(), 10);
        assert_eq!(g.pillar_height(), 3);
        assert_eq!(g.pillars(), vec![0, 4]);
        assert_eq!(g.count(3), 2);
        assert_eq!(g.count(9), 0);
        assert_eq!(g.distinct(), 5);
        assert!(g.is_l_eligible(3));
        assert!(!g.is_l_eligible(4));
    }

    #[test]
    fn thin_fat_classification() {
        // size 6, h = 2 → thin for l = 3, fat for l = 2.
        let g = group(&[0, 0, 1, 1, 2, 3]);
        assert!(g.is_thin(3));
        assert!(!g.is_fat(3));
        assert!(g.is_fat(2));
    }

    #[test]
    fn conflict_against_residue() {
        let g = group(&[0, 0, 1]);
        let mut r = ResidueSet::new(4);
        r.push(10, 2);
        assert!(!g.is_conflicting(&r)); // pillars of R = {2}, of Q = {0}
        r.push(11, 0);
        // now pillars of R = {0, 2} (both count 1); Q's pillar 0 conflicts.
        assert!(g.is_conflicting(&r));
        assert_eq!(g.conflicting_pillars(&r), vec![0]);
    }

    #[test]
    fn remove_one_updates_pillar() {
        let mut g = group(&[0, 0, 1]);
        assert_eq!(g.pillar_height(), 2);
        g.remove_one(0);
        assert_eq!(g.pillar_height(), 1);
        assert_eq!(g.size(), 2);
        g.remove_one(0);
        assert_eq!(g.count(0), 0);
        assert_eq!(g.present_values(), &[1]);
    }

    #[test]
    fn remove_one_per_pillar_moves_all_pillars() {
        let mut g = group(&[0, 0, 1, 1, 2]);
        let mut r = ResidueSet::new(4);
        let moved = g.remove_one_per_pillar(&mut r);
        assert_eq!(moved, 2);
        assert_eq!(g.size(), 3);
        assert_eq!(g.pillar_height(), 1);
        assert_eq!(r.count(0), 1);
        assert_eq!(r.count(1), 1);
    }

    #[test]
    fn drain_moves_everything() {
        let mut g = group(&[0, 1, 2]);
        let mut r = ResidueSet::new(4);
        assert_eq!(g.drain_into(&mut r), 3);
        assert!(g.is_empty());
        assert_eq!(r.len(), 3);
        assert!(g.is_dead(2, &r)); // empty ⇒ dead
    }

    #[test]
    fn non_residue_pillar_value_prefers_rare() {
        let g = group(&[0, 1, 2]);
        let mut r = ResidueSet::new(4);
        r.push(10, 0);
        r.push(11, 0);
        r.push(12, 1);
        // R pillars = {0}; candidates 1 (h=1) and 2 (h=0) → pick 2.
        assert_eq!(g.non_residue_pillar_value(&r), Some(2));
    }
}
