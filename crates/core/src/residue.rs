//! The residue set `R` with the paper's §5.5 inverted-list structure.
//!
//! `R` only ever *gains* tuples, so the structure supports exactly the
//! queries the three phases need in amortized constant time each:
//! increment `h(R, v)`, read `h(R, v)`, read the pillar height `h(R)`,
//! enumerate the pillar set, and test l-eligibility.
//!
//! The paper's `A_R` array maps a multiplicity `c` to the list of SA values
//! with `h(R, v) = c`; we realize each list as an intrusive doubly-linked
//! list threaded through per-SA `next`/`prev` arrays, with a *pillar
//! pointer* (`max_count`) that only moves up because counts only grow.

use ldiv_microdata::{RowId, Value};

const NIL: u32 = u32::MAX;

/// The set of removed tuples, with SA-multiplicity bookkeeping.
#[derive(Debug, Clone)]
pub struct ResidueSet {
    /// All removed row ids, in removal order.
    rows: Vec<RowId>,
    /// `h(R, v)` per SA value.
    count: Vec<u32>,
    /// `bucket_head[c]` = first SA value with count `c` (NIL when empty).
    bucket_head: Vec<u32>,
    /// Intrusive links per SA value inside its count bucket.
    next: Vec<u32>,
    prev: Vec<u32>,
    /// The pillar height `h(R)`.
    max_count: u32,
}

impl ResidueSet {
    /// An empty residue over an SA domain of `sa_domain` values.
    pub fn new(sa_domain: u32) -> Self {
        let m = sa_domain as usize;
        ResidueSet {
            rows: Vec::new(),
            count: vec![0; m],
            bucket_head: vec![NIL; 1], // bucket 0 unused (values with count 0 are not threaded)
            next: vec![NIL; m],
            prev: vec![NIL; m],
            max_count: 0,
        }
    }

    /// Number of removed tuples `|R|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether `R` is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The removed row ids in removal order.
    pub fn rows(&self) -> &[RowId] {
        &self.rows
    }

    /// Consumes the structure, returning the removed rows.
    pub fn into_rows(self) -> Vec<RowId> {
        self.rows
    }

    /// `h(R, v)`.
    #[inline]
    pub fn count(&self, v: Value) -> u32 {
        self.count[v as usize]
    }

    /// The pillar height `h(R)`.
    #[inline]
    pub fn pillar_height(&self) -> u32 {
        self.max_count
    }

    /// Whether `v` is a pillar of `R` (`h(R, v) = h(R) > 0`).
    #[inline]
    pub fn is_pillar(&self, v: Value) -> bool {
        self.max_count > 0 && self.count[v as usize] == self.max_count
    }

    /// The pillar values, ascending. `O(#pillars)` via the bucket list.
    pub fn pillars(&self) -> Vec<Value> {
        let mut out = Vec::new();
        if self.max_count == 0 {
            return out;
        }
        let mut cur = self.bucket_head[self.max_count as usize];
        while cur != NIL {
            out.push(cur as Value);
            cur = self.next[cur as usize];
        }
        out.sort_unstable();
        out
    }

    /// Number of pillar values. For a non-l-eligible residue this is at most
    /// `l − 1` (used by the phase-3 SET-COVER bound).
    pub fn pillar_count(&self) -> usize {
        let mut n = 0;
        if self.max_count == 0 {
            return 0;
        }
        let mut cur = self.bucket_head[self.max_count as usize];
        while cur != NIL {
            n += 1;
            cur = self.next[cur as usize];
        }
        n
    }

    /// Definition 2 on `R`: `|R| ≥ l · h(R)`.
    #[inline]
    pub fn is_l_eligible(&self, l: u32) -> bool {
        self.rows.len() as u64 >= l as u64 * self.max_count as u64
    }

    /// The eligibility gap `Δ(R) = l·h(R) − |R|` (0 when eligible), the
    /// quantity phase 3 drives to zero (proof of Lemma 9).
    pub fn gap(&self, l: u32) -> i64 {
        l as i64 * self.max_count as i64 - self.rows.len() as i64
    }

    /// Moves one tuple with SA value `v` into `R` — the paper's constant
    /// time update.
    pub fn push(&mut self, row: RowId, v: Value) {
        self.rows.push(row);
        let vi = v as usize;
        let c = self.count[vi];
        if c > 0 {
            self.unlink(vi, c as usize);
        }
        let new_c = c + 1;
        self.count[vi] = new_c;
        if new_c as usize >= self.bucket_head.len() {
            self.bucket_head.resize(new_c as usize + 1, NIL);
        }
        self.link(vi, new_c as usize);
        if new_c > self.max_count {
            self.max_count = new_c;
        }
    }

    #[inline]
    fn link(&mut self, v: usize, bucket: usize) {
        let head = self.bucket_head[bucket];
        self.next[v] = head;
        self.prev[v] = NIL;
        if head != NIL {
            self.prev[head as usize] = v as u32;
        }
        self.bucket_head[bucket] = v as u32;
    }

    #[inline]
    fn unlink(&mut self, v: usize, bucket: usize) {
        let p = self.prev[v];
        let n = self.next[v];
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.bucket_head[bucket] = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        }
    }

    /// Exhaustive structural check, used by tests and debug assertions.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut max = 0;
        let mut total = 0u64;
        for (v, &c) in self.count.iter().enumerate() {
            total += c as u64;
            max = max.max(c);
            if c > 0 {
                // v must be threaded in bucket c.
                let mut cur = self.bucket_head[c as usize];
                let mut found = false;
                while cur != NIL {
                    if cur as usize == v {
                        found = true;
                        break;
                    }
                    cur = self.next[cur as usize];
                }
                assert!(found, "SA {v} with count {c} missing from its bucket");
            }
        }
        assert_eq!(max, self.max_count, "stale pillar pointer");
        assert_eq!(total as usize, self.rows.len(), "count/row mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_tracks_counts_and_pillars() {
        let mut r = ResidueSet::new(4);
        assert!(r.is_l_eligible(5)); // empty R is always eligible
        for (row, v) in [(0, 1), (1, 1), (2, 3), (3, 1)] {
            r.push(row, v);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.count(1), 3);
        assert_eq!(r.pillar_height(), 3);
        assert_eq!(r.pillars(), vec![1]);
        assert!(r.is_pillar(1));
        assert!(!r.is_pillar(3));
        r.check_invariants();
    }

    #[test]
    fn eligibility_and_gap() {
        let mut r = ResidueSet::new(4);
        r.push(0, 0);
        r.push(1, 0);
        // h = 2, |R| = 2: 2-eligible needs 4.
        assert!(!r.is_l_eligible(2));
        assert_eq!(r.gap(2), 2);
        r.push(2, 1);
        r.push(3, 2);
        assert!(r.is_l_eligible(2));
        assert_eq!(r.gap(2), 0);
    }

    #[test]
    fn multiple_pillars_enumerate_sorted() {
        let mut r = ResidueSet::new(5);
        for (row, v) in [(0, 4), (1, 2), (2, 0), (3, 4), (4, 2), (5, 0)] {
            r.push(row, v);
        }
        assert_eq!(r.pillars(), vec![0, 2, 4]);
        assert_eq!(r.pillar_count(), 3);
    }

    proptest! {
        #[test]
        fn random_pushes_preserve_invariants(
            values in proptest::collection::vec(0u16..8, 0..200)
        ) {
            let mut r = ResidueSet::new(8);
            let mut reference = [0u32; 8];
            for (i, &v) in values.iter().enumerate() {
                r.push(i as RowId, v);
                reference[v as usize] += 1;
            }
            r.check_invariants();
            for v in 0..8u16 {
                prop_assert_eq!(r.count(v), reference[v as usize]);
            }
            let expect_max = reference.iter().copied().max().unwrap_or(0);
            prop_assert_eq!(r.pillar_height(), expect_max);
            let expect_pillars: Vec<Value> = (0..8u16)
                .filter(|&v| expect_max > 0 && reference[v as usize] == expect_max)
                .collect();
            prop_assert_eq!(r.pillars(), expect_pillars);
        }
    }
}
