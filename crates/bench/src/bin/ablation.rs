//! Regenerates the residue-refinement ablation (A3/A4).
//!
//! Usage: `cargo run --release -p ldiv-bench --bin ablation -- [options]`
//! (see `HarnessConfig::usage` for options; `--paper` = published scale).

use ldiv_bench::{experiments, HarnessConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match HarnessConfig::from_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n{}", HarnessConfig::usage());
            std::process::exit(2);
        }
    };
    let reports = vec![experiments::ablation_residue(&cfg)];
    experiments::emit(&reports, &cfg);
}
