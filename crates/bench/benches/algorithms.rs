//! End-to-end anonymization throughput: TP, TP+, Hilbert, TDS on one
//! SAL-4 projection. Mirrors the workloads behind Figures 4–6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldiv_bench::{run_algo, Algo};
use ldiv_datagen::{sal, AcsConfig};

fn bench_algorithms(c: &mut Criterion) {
    let base = sal(&AcsConfig {
        rows: 10_000,
        seed: 1,
    });
    let table = base.project(&[0, 1, 3, 5]).unwrap(); // Age, Gender, Marital, Education
    let mut group = c.benchmark_group("anonymize_sal4_10k");
    group.sample_size(10);
    for algo in [Algo::Tp, Algo::TpPlus, Algo::Hilbert, Algo::Tds] {
        for l in [2u32, 6] {
            group.bench_with_input(BenchmarkId::new(algo.name(), l), &l, |b, &l| {
                b.iter(|| run_algo(algo, &table, l, false).stars)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
