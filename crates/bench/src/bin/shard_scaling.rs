//! Per-mechanism scaling curves for partition-level sharding
//! (`ldiv-shard`): rows/s versus shard count, plus the KL-utility delta
//! each shard count costs relative to the unsharded run.
//!
//! Where `parallel_speedup` asserts that `--threads` changes *nothing*,
//! sharding changes the published table — so this bin reports two curves
//! per mechanism: throughput (anonymize + stitch + KL, wall-clock) and
//! the Eq. (2) KL ratio against shards = 1. The shards = 1 run itself is
//! asserted byte-identical to the unsharded mechanism (the same gate
//! `tests/shard_equivalence.rs` pins), so the baseline is honest.
//!
//! ```text
//! cargo run --release -p ldiv-bench --bin shard_scaling -- \
//!     --rows 100000 --shards 1,2,4,8 --l 4
//! ```
//!
//! Defaults keep a laptop run short: `--rows 50000`, `--shards 1,2,4`,
//! `--l 4`, every registered mechanism, `--threads 0` (auto).

use ldiv_api::Params;
use ldiv_datagen::{sal, AcsConfig};
use ldiv_metrics::kl_divergence_with;
use ldiv_server::wire;
use ldiversity::shard::run_sharded;
use ldiversity::standard_registry;
use std::time::Instant;

fn parse_list<T: std::str::FromStr>(raw: &str, flag: &str) -> Vec<T> {
    raw.split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad value '{s}' for {flag}"))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rows_list: Vec<usize> = vec![50_000];
    let mut shards_list: Vec<u32> = vec![1, 2, 4];
    let mut l = 4u32;
    let mut threads = 0u32;
    let mut algos: Option<Vec<String>> = None;
    let mut seed = 77u64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--rows" => rows_list = parse_list(value, "--rows"),
            "--shards" => shards_list = parse_list(value, "--shards"),
            "--l" => l = value.parse().expect("bad --l"),
            "--threads" => threads = value.parse().expect("bad --threads"),
            "--algos" => algos = Some(value.split(',').map(|s| s.trim().to_string()).collect()),
            "--seed" => seed = value.parse().expect("bad --seed"),
            other => {
                panic!("unknown flag '{other}' (try --rows/--shards/--l/--threads/--algos/--seed)")
            }
        }
    }
    if !shards_list.contains(&1) {
        shards_list.insert(0, 1); // the unsharded baseline anchors every delta
    }
    shards_list.sort_unstable();
    shards_list.dedup();

    let registry = standard_registry();
    let names: Vec<String> = match algos {
        Some(list) => {
            // Fail a typo'd --algos up front: a silent '-' column would
            // read as "infeasible at this l", not "no such mechanism".
            for name in &list {
                if registry.get(name).is_none() {
                    panic!("unknown mechanism '{name}' (known: {:?})", registry.names());
                }
            }
            list
        }
        None => registry.names().iter().map(|s| s.to_string()).collect(),
    };

    println!(
        "shard_scaling: l = {l}, threads = {threads} (0 = auto), cores available = {}",
        std::thread::available_parallelism().map_or(0, |p| p.get())
    );
    for &rows in &rows_list {
        let table = sal(&AcsConfig { rows, seed });
        println!("\ndataset sal rows={rows} (d={})", table.dimensionality());
        print!("{:>10}", "mechanism");
        for &k in &shards_list {
            print!("  {:>11}", format!("k={k} rows/s"));
            if k != 1 {
                print!("  {:>7}", "KL x");
            }
        }
        println!();
        for name in &names {
            let mut baseline_kl: Option<f64> = None;
            print!("{name:>10}");
            for &k in &shards_list {
                let params = Params::new(l).with_threads(threads).with_shards(k);
                let start = Instant::now();
                let outcome = run_sharded(&registry, name, &table, &params);
                match outcome {
                    Ok(publication) => {
                        let kl = kl_divergence_with(&table, &publication, &params.executor());
                        let secs = start.elapsed().as_secs_f64();
                        print!("  {:>11.0}", rows as f64 / secs);
                        match baseline_kl {
                            None => {
                                // Honest baseline: shards = 1 through the
                                // driver must be the mechanism's own bytes.
                                let direct = registry
                                    .get(name)
                                    .expect("registered")
                                    .anonymize(&table, &params)
                                    .expect("baseline run");
                                let direct_kl =
                                    kl_divergence_with(&table, &direct, &params.executor());
                                assert_eq!(
                                    wire::publication_json(&table, &direct, &params, direct_kl)
                                        .render(),
                                    wire::publication_json(&table, &publication, &params, kl)
                                        .render(),
                                    "{name}: shards=1 diverged from the unsharded mechanism"
                                );
                                baseline_kl = Some(kl);
                            }
                            Some(base_kl) => {
                                print!("  {:>7.3}", kl / base_kl.max(1e-12));
                            }
                        }
                    }
                    Err(e) => {
                        print!("  {:>11}", "-");
                        if k != 1 {
                            print!("  {:>7}", "-");
                        }
                        let _ = e; // infeasible at this l: skip the cell
                    }
                }
            }
            println!();
        }
    }
    println!(
        "\nKL x = sharded KL / unsharded KL (1.000 = free). shards=1 wire \
         bytes asserted identical to the unsharded mechanism."
    );
}
