//! The fixed worker pool with a bounded job queue.
//!
//! The listener thread accepts connections and hands each one to the
//! pool; a fixed set of worker threads drains the queue. The queue is a
//! bounded `sync_channel`, so under overload `submit` fails fast and the
//! listener answers 503 instead of buffering unboundedly — back-pressure
//! is part of the contract, not an afterthought.
//!
//! The pool is generic over the queued item so it can be unit-tested
//! with plain values, with the server instantiating `WorkerPool<TcpStream>`.

use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A fixed pool of worker threads draining one bounded queue.
///
/// Dropping the pool closes the queue and joins every worker, so
/// in-flight items finish before the pool disappears.
pub struct WorkerPool<T: Send + 'static> {
    tx: Option<SyncSender<T>>,
    workers: Vec<JoinHandle<()>>,
    queue_depth: usize,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawns `workers` threads, each running `handler` on queued items.
    /// At most `queue_depth` items wait unclaimed (≥ 1; a depth of 0
    /// would make every submit a rendezvous and defeat the queue).
    pub fn new<F>(workers: usize, queue_depth: usize, handler: F) -> Self
    where
        F: Fn(T) + Send + Sync + 'static,
    {
        let workers = workers.max(1);
        let queue_depth = queue_depth.max(1);
        let (tx, rx) = mpsc::sync_channel::<T>(queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let handler = Arc::new(handler);
        let threads = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("ldiv-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the receiver lock only for the dequeue, not
                        // while running the handler.
                        let item = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => break,
                        };
                        match item {
                            Ok(item) => handler(item),
                            Err(_) => break, // queue closed: shut down
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers: threads,
            queue_depth,
        }
    }

    /// Enqueues an item without blocking. Returns the item back when the
    /// queue is full (the caller turns this into 503) or the pool is
    /// shutting down.
    pub fn submit(&self, item: T) -> Result<(), T> {
        match &self.tx {
            None => Err(item),
            Some(tx) => match tx.try_send(item) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(item)) | Err(TrySendError::Disconnected(item)) => Err(item),
            },
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Capacity of the job queue.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }
}

impl<T: Send + 'static> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        self.tx.take(); // close the queue: workers drain, then exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Condvar;

    #[test]
    fn all_submitted_jobs_run_across_workers() {
        let sum = Arc::new(AtomicUsize::new(0));
        let pool = {
            let sum = Arc::clone(&sum);
            WorkerPool::new(4, 16, move |v: usize| {
                sum.fetch_add(v, Ordering::SeqCst);
            })
        };
        for v in 1..=100 {
            while pool.submit(v).is_err() {
                std::thread::yield_now(); // queue momentarily full
            }
        }
        drop(pool); // joins workers, so every job has run
        assert_eq!(sum.load(Ordering::SeqCst), 5050);
    }

    #[test]
    fn bounded_queue_rejects_when_full() {
        // One worker parked on a gate; the queue (depth 2) then fills and
        // the next submits bounce back.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let pool = {
            let gate = Arc::clone(&gate);
            WorkerPool::new(1, 2, move |_v: usize| {
                let (lock, cvar) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cvar.wait(open).unwrap();
                }
            })
        };
        // First item is picked up by the (now blocked) worker; two more
        // sit in the queue. Give the worker a moment to claim the first.
        pool.submit(0).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let mut queued = 0;
        while queued < 2 && std::time::Instant::now() < deadline {
            if pool.submit(1).is_ok() {
                queued += 1;
            } else {
                std::thread::yield_now();
            }
        }
        assert_eq!(queued, 2, "queue should accept its depth");
        // Worker blocked + queue full: the pool must now refuse.
        let mut rejected = false;
        for _ in 0..3 {
            if let Err(returned) = pool.submit(9) {
                assert_eq!(returned, 9);
                rejected = true;
                break;
            }
        }
        assert!(rejected, "full queue must bounce submissions");
        // Open the gate so drop() can join.
        let (lock, cvar) = &*gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
    }

    #[test]
    fn minimums_are_enforced() {
        let pool = WorkerPool::new(0, 0, |_: usize| {});
        assert_eq!(pool.worker_count(), 1);
        assert_eq!(pool.queue_depth(), 1);
    }
}
