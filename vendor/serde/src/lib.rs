//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the trait and the
//! macro namespace so `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile without registry access.
//! The derives emit nothing (see `serde_derive`); the traits are empty
//! markers. Swap in the real crates once networked builds are available.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
