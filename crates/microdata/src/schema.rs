use crate::{MicrodataError, Value};
use serde::{Deserialize, Serialize};

/// A categorical attribute: a name plus the cardinality of its domain.
///
/// Values of the attribute are dense codes `0..domain_size`. Optional
/// human-readable labels can be attached for display and CSV round-trips.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    name: String,
    domain_size: u32,
    /// Optional display labels, one per code. Empty when codes are shown raw.
    labels: Vec<String>,
}

impl Attribute {
    /// Creates an attribute with raw integer codes `0..domain_size`.
    pub fn new(name: impl Into<String>, domain_size: u32) -> Self {
        Attribute {
            name: name.into(),
            domain_size,
            labels: Vec::new(),
        }
    }

    /// Creates an attribute whose codes carry display labels.
    ///
    /// The domain size is the number of labels.
    pub fn with_labels(name: impl Into<String>, labels: Vec<String>) -> Self {
        Attribute {
            name: name.into(),
            domain_size: labels.len() as u32,
            labels,
        }
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cardinality of the attribute's domain.
    pub fn domain_size(&self) -> u32 {
        self.domain_size
    }

    /// Display label for a code, falling back to the code's decimal form.
    pub fn label(&self, code: Value) -> String {
        self.labels
            .get(code as usize)
            .cloned()
            .unwrap_or_else(|| code.to_string())
    }

    /// Looks a label up, returning its code.
    pub fn code_of(&self, label: &str) -> Option<Value> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|p| p as Value)
    }
}

/// The shape of a microdata table: `d` QI attributes plus one SA.
///
/// Mirrors Section 3 of the paper: `T` has QI attributes `A_1..A_d` and a
/// sensitive attribute `B`, all categorical.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    qi: Vec<Attribute>,
    sensitive: Attribute,
}

impl Schema {
    /// Creates a schema, validating that there is at least one QI attribute
    /// and that every domain is non-empty.
    pub fn new(qi: Vec<Attribute>, sensitive: Attribute) -> Result<Self, MicrodataError> {
        if qi.is_empty() {
            return Err(MicrodataError::InvalidSchema(
                "schema needs at least one QI attribute".into(),
            ));
        }
        for a in qi.iter().chain(std::iter::once(&sensitive)) {
            if a.domain_size == 0 {
                return Err(MicrodataError::InvalidSchema(format!(
                    "attribute '{}' has an empty domain",
                    a.name
                )));
            }
            if a.domain_size > Value::MAX as u32 + 1 {
                return Err(MicrodataError::InvalidSchema(format!(
                    "attribute '{}' domain size {} exceeds the value type",
                    a.name, a.domain_size
                )));
            }
        }
        Ok(Schema { qi, sensitive })
    }

    /// Number of QI attributes (the paper's `d`, the table dimensionality).
    pub fn dimensionality(&self) -> usize {
        self.qi.len()
    }

    /// The QI attributes, in column order.
    pub fn qi_attributes(&self) -> &[Attribute] {
        &self.qi
    }

    /// A single QI attribute.
    pub fn qi_attribute(&self, i: usize) -> &Attribute {
        &self.qi[i]
    }

    /// The sensitive attribute.
    pub fn sensitive(&self) -> &Attribute {
        &self.sensitive
    }

    /// Cardinality of the SA domain — an upper bound on the paper's `m`
    /// (the number of SA values actually present in a table).
    pub fn sa_domain_size(&self) -> u32 {
        self.sensitive.domain_size
    }

    /// Projects the schema onto a subset of QI attribute indices, keeping
    /// the SA. Used to build the paper's `SAL-d` / `OCC-d` families.
    pub fn project(&self, qi_indices: &[usize]) -> Result<Schema, MicrodataError> {
        let mut qi = Vec::with_capacity(qi_indices.len());
        for &i in qi_indices {
            let a = self.qi.get(i).ok_or_else(|| {
                MicrodataError::InvalidSchema(format!("projection index {i} out of range"))
            })?;
            qi.push(a.clone());
        }
        Schema::new(qi, self.sensitive.clone())
    }

    /// Product of all QI domain sizes: the size of the QI space. Saturates.
    pub fn qi_space_size(&self) -> u128 {
        self.qi
            .iter()
            .fold(1u128, |acc, a| acc.saturating_mul(a.domain_size as u128))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_schema() -> Schema {
        Schema::new(
            vec![Attribute::new("age", 4), Attribute::new("zip", 3)],
            Attribute::new("disease", 5),
        )
        .unwrap()
    }

    #[test]
    fn dimensionality_counts_qi_only() {
        assert_eq!(small_schema().dimensionality(), 2);
    }

    #[test]
    fn empty_qi_rejected() {
        let err = Schema::new(vec![], Attribute::new("sa", 2)).unwrap_err();
        assert!(matches!(err, MicrodataError::InvalidSchema(_)));
    }

    #[test]
    fn empty_domain_rejected() {
        let err = Schema::new(vec![Attribute::new("a", 0)], Attribute::new("sa", 2)).unwrap_err();
        assert!(matches!(err, MicrodataError::InvalidSchema(_)));
    }

    #[test]
    fn labels_round_trip() {
        let a = Attribute::with_labels("gender", vec!["M".into(), "F".into()]);
        assert_eq!(a.domain_size(), 2);
        assert_eq!(a.label(1), "F");
        assert_eq!(a.code_of("M"), Some(0));
        assert_eq!(a.code_of("X"), None);
    }

    #[test]
    fn unlabeled_attribute_prints_codes() {
        let a = Attribute::new("age", 10);
        assert_eq!(a.label(7), "7");
    }

    #[test]
    fn projection_preserves_sa_and_order() {
        let s = small_schema();
        let p = s.project(&[1]).unwrap();
        assert_eq!(p.dimensionality(), 1);
        assert_eq!(p.qi_attribute(0).name(), "zip");
        assert_eq!(p.sensitive().name(), "disease");
    }

    #[test]
    fn projection_out_of_range_fails() {
        assert!(small_schema().project(&[5]).is_err());
    }

    #[test]
    fn qi_space_size_multiplies() {
        assert_eq!(small_schema().qi_space_size(), 12);
    }
}
