//! The workspace front door: the standard mechanism registry and the
//! [`Anonymizer`] builder.

use ldiv_api::{LdivError, MechanismRegistry, Params, Publication, Recoding};
use ldiv_microdata::Table;

/// The registry holding every publication method this workspace ships,
/// constructible by name:
///
/// | Name | Mechanism | Payload |
/// |---|---|---|
/// | `"tp"` | three-phase tuple minimization (§5) | suppressed |
/// | `"tp+"` | TP + Hilbert residue refinement (§5.6) | suppressed |
/// | `"hilbert"` | curve-ordered grouping baseline (§6.1) | suppressed |
/// | `"anatomy"` | QI/SA table separation (§2) | anatomy QIT/ST |
/// | `"mondrian"` | l-gated median kd-splits (§6.2) | boxes |
/// | `"tds"` | top-down specialization (§6.2) | recoded |
pub fn standard_registry() -> MechanismRegistry {
    MechanismRegistry::new()
        .with(Box::new(ldiv_core::TpMechanism))
        .with(Box::new(ldiv_hilbert::tp_plus_mechanism()))
        .with(Box::new(ldiv_hilbert::HilbertMechanism))
        .with(Box::new(ldiv_anatomy::AnatomyMechanism))
        .with(Box::new(ldiv_multidim::MondrianMechanism))
        .with(Box::new(ldiv_tds::TdsMechanism))
}

/// The result of an [`Anonymizer`] run: the publication plus everything
/// needed to interpret it against the *original* table.
#[derive(Debug, Clone)]
pub struct Anonymized {
    /// The mechanism's publication. With preprocessing it describes the
    /// coarsened table ([`coarse_table`](Anonymized::coarse_table)).
    pub publication: Publication,
    /// The §5.6 preprocessing recoding, when one was applied.
    pub recoding: Option<Recoding>,
    /// The coarsened table the mechanism actually ran on, when
    /// preprocessing was applied.
    pub coarse_table: Option<Table>,
    /// Eq. (2) KL-divergence of the publication measured against the
    /// original input table (mixed star/bucket semantics under
    /// preprocessing).
    pub kl: f64,
}

impl Anonymized {
    /// Stars in the publication (0 for non-suppression payloads).
    pub fn star_count(&self) -> usize {
        self.publication.star_count()
    }

    /// The table the publication's partition refers to — the coarse table
    /// under preprocessing, otherwise the caller's input.
    pub fn published_table<'a>(&'a self, original: &'a Table) -> &'a Table {
        self.coarse_table.as_ref().unwrap_or(original)
    }
}

/// Builder-style front door over the [`MechanismRegistry`]:
///
/// ```
/// use ldiversity::Anonymizer;
/// use ldiversity::datagen::{sal, AcsConfig};
///
/// let table = sal(&AcsConfig { rows: 2_000, seed: 5 })
///     .project(&[0, 5])
///     .unwrap();
/// let run = Anonymizer::new()
///     .l(4)
///     .mechanism("tp+")
///     .preprocess_depth(2)
///     .run(&table)
///     .unwrap();
/// assert!(run
///     .publication
///     .is_l_diverse(run.published_table(&table), 4));
/// assert!(run.kl.is_finite());
/// ```
///
/// Defaults: mechanism `"tp+"`, `l = 2`, fanout 2, no preprocessing,
/// the [`standard_registry`]. Preprocessing (§5.6) coarsens every QI
/// attribute's balanced taxonomy to the given depth before the mechanism
/// runs — only meaningful for suppression mechanisms (`tp`, `tp+`,
/// `hilbert`); other payloads make [`Anonymizer::run`] return
/// [`LdivError::InvalidParams`].
pub struct Anonymizer {
    registry: MechanismRegistry,
    mechanism: String,
    params: Params,
    preprocess_depth: Option<u32>,
    deadline_ms: u64,
}

impl Default for Anonymizer {
    fn default() -> Self {
        Anonymizer::new()
    }
}

impl Anonymizer {
    /// An anonymizer over the [`standard_registry`], defaulting to
    /// `"tp+"` at `l = 2`.
    pub fn new() -> Self {
        Anonymizer::with_registry(standard_registry())
    }

    /// An anonymizer over a custom registry (e.g. one extended with
    /// downstream mechanisms).
    pub fn with_registry(registry: MechanismRegistry) -> Self {
        Anonymizer {
            registry,
            mechanism: "tp+".to_string(),
            params: Params::default(),
            preprocess_depth: None,
            deadline_ms: 0,
        }
    }

    /// Sets the diversity requirement `l`.
    pub fn l(mut self, l: u32) -> Self {
        self.params.l = l;
        self
    }

    /// Sets the taxonomy fanout (TDS and preprocessing).
    pub fn fanout(mut self, fanout: u32) -> Self {
        self.params.fanout = fanout;
        self
    }

    /// Sets the intra-run thread budget (`0` = auto via `LDIV_THREADS`
    /// or the machine's parallelism, `1` = strictly sequential).
    ///
    /// Execution-only: the publication is byte-identical for every
    /// budget — the differential suite `tests/parallel_equivalence.rs`
    /// enforces this for every registered mechanism.
    pub fn threads(mut self, threads: u32) -> Self {
        self.params.threads = threads;
        self
    }

    /// Sets the partition-level shard count (`0` = auto via
    /// `LDIV_SHARDS`, `1` = unsharded). With K > 1 the run splits the
    /// table K ways (`ldiv-shard`), anonymizes the shards concurrently
    /// and stitches them with eligibility repair.
    ///
    /// **Output-affecting**, unlike [`threads`](Anonymizer::threads):
    /// the stitched table trades a little utility for shard-level
    /// scaling — `tests/shard_equivalence.rs` bounds the trade and pins
    /// `shards = 1` byte-identical to the unsharded path. The §5.6
    /// preprocessing workflow runs unsharded: combining
    /// [`preprocess_depth`](Anonymizer::preprocess_depth) with an
    /// explicit shard count > 1 makes [`run`](Anonymizer::run) return
    /// [`LdivError::InvalidParams`] rather than silently dropping the
    /// request. The auto form — `0`, possibly resolved through
    /// `LDIV_SHARDS` — stays permitted, but when the ambient override
    /// resolves above 1 the publication carries an explicit note that
    /// the coarse table ran unsharded.
    pub fn shards(mut self, shards: u32) -> Self {
        self.params.shards = shards;
        self
    }

    /// Caps the run's wall-clock budget in milliseconds (`0` = auto via
    /// `LDIV_DEADLINE_MS`, else unlimited). An elapsed budget makes
    /// [`run`](Anonymizer::run) return
    /// [`LdivError::DeadlineExceeded`] — never a partial publication.
    ///
    /// Execution-only, like [`threads`](Anonymizer::threads): a run
    /// either finishes with the same bytes it would have produced
    /// without a deadline, or errors. The deadline never appears in
    /// [`Params::canonical`], so cache keys are unaffected.
    ///
    /// The budget anchors when [`run`](Anonymizer::run) is called, not
    /// here, so a builder can be configured ahead of time and reused.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = ms;
        self
    }

    /// Selects the mechanism by registry name (`"tp"`, `"tp+"`,
    /// `"anatomy"`, `"mondrian"`, `"hilbert"`, `"tds"`, …).
    pub fn mechanism(mut self, name: impl Into<String>) -> Self {
        self.mechanism = name.into();
        self
    }

    /// Replaces the whole parameter bag.
    pub fn params(mut self, params: Params) -> Self {
        self.params = params;
        self
    }

    /// Enables §5.6 preprocessing: cut every attribute's balanced
    /// taxonomy at `depth` (0 = fully generalized) and run the mechanism
    /// on the coarsened table.
    ///
    /// The coarse table always runs unsharded. An explicit
    /// [`shards`](Anonymizer::shards) count > 1 is rejected with
    /// [`LdivError::InvalidParams`]; when the auto form resolves above 1
    /// through the ambient `LDIV_SHARDS` override, the publication notes
    /// `preprocessing: coarse table ran unsharded (…)` so the dropped
    /// override is visible instead of silent.
    pub fn preprocess_depth(mut self, depth: u32) -> Self {
        self.preprocess_depth = Some(depth);
        self
    }

    /// The registry backing this builder.
    pub fn registry(&self) -> &MechanismRegistry {
        &self.registry
    }

    /// Runs the configured mechanism, validating its output.
    ///
    /// The whole run sits behind `ldiv-guard`: a mechanism panic comes
    /// back as [`LdivError::Internal`] and an elapsed
    /// [`deadline_ms`](Anonymizer::deadline_ms) budget as
    /// [`LdivError::DeadlineExceeded`] — callers never see an unwinding
    /// panic. The deadline anchors here, so every internal executor
    /// (shards, metrics, preprocessing) shares one absolute expiry.
    pub fn run(&self, table: &Table) -> Result<Anonymized, LdivError> {
        let params = self
            .params
            .with_deadline(ldiv_api::Deadline::resolve_ms(self.deadline_ms));
        ldiv_guard::guarded("anonymizer", || self.run_inner(table, &params))
    }

    fn run_inner(&self, table: &Table, params: &Params) -> Result<Anonymized, LdivError> {
        match self.preprocess_depth {
            None => {
                let publication =
                    ldiv_shard::run_sharded(&self.registry, &self.mechanism, table, params)?;
                publication.validate(table, params.l)?;
                let kl = ldiv_metrics::kl_divergence_with(table, &publication, &params.executor());
                Ok(Anonymized {
                    publication,
                    recoding: None,
                    coarse_table: None,
                    kl,
                })
            }
            Some(depth) => {
                // Preprocessing runs unsharded; an explicitly requested
                // shard count would be silently dropped, so reject it
                // (the CLI surfaces the same conflict as a usage error
                // before it ever reaches this path). The auto form —
                // `0`, even when `LDIV_SHARDS` resolves it above 1 — is
                // the documented "unsharded preprocessing" default.
                if params.shards > 1 {
                    return Err(LdivError::InvalidParams(format!(
                        "preprocessing (preprocess_depth) runs unsharded; drop the explicit \
                         shards={} or drop the preprocessing depth for a sharded run",
                        params.shards
                    )));
                }
                let mechanism = self.registry.get_or_unknown(&self.mechanism)?;
                let recoding =
                    ldiv_pipeline::uniform_recoding(table.schema(), params.fanout, depth);
                let run = ldiv_pipeline::anonymize_preprocessed_with(
                    table, &recoding, mechanism, params,
                )?;
                run.publication.validate(&run.coarse_table, params.l)?;
                let mut publication = run.publication;
                // The auto shard form (`0`) may resolve above 1 through
                // the ambient `LDIV_SHARDS` override; preprocessing still
                // runs unsharded, and that divergence must be visible in
                // the publication itself, not silently absorbed.
                let ambient = params.resolved_shards();
                if params.shards == 0 && ambient > 1 {
                    publication.push_note(format!(
                        "preprocessing: coarse table ran unsharded \
                         (ambient LDIV_SHARDS={ambient} not applied)"
                    ));
                }
                let kl = run.kl.ok_or_else(|| {
                    LdivError::InvalidParams(format!(
                        "preprocessing requires a suppression mechanism, but '{}' \
                         publishes a {} payload",
                        self.mechanism,
                        match publication.payload() {
                            ldiv_api::Payload::Boxes(_) => "boxes",
                            ldiv_api::Payload::Anatomy(_) => "anatomy",
                            ldiv_api::Payload::Recoded(_) => "recoded",
                            ldiv_api::Payload::Suppressed(_) => unreachable!(),
                        }
                    ))
                })?;
                Ok(Anonymized {
                    publication,
                    recoding: Some(run.recoding),
                    coarse_table: Some(run.coarse_table),
                    kl,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldiv_microdata::samples;

    #[test]
    fn standard_registry_holds_all_six_names() {
        let reg = standard_registry();
        assert_eq!(
            reg.names(),
            vec!["anatomy", "hilbert", "mondrian", "tds", "tp", "tp+"]
        );
    }

    #[test]
    fn builder_runs_every_mechanism_on_the_hospital_table() {
        let t = samples::hospital();
        for name in standard_registry().names() {
            let run = Anonymizer::new()
                .l(2)
                .mechanism(name)
                .run(&t)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(run.publication.is_l_diverse(&t, 2), "{name}");
            assert!(run.kl.is_finite() && run.kl >= -1e-9, "{name}: {}", run.kl);
        }
    }

    #[test]
    fn sharded_builder_runs_stay_l_diverse_for_every_mechanism() {
        let t = samples::hospital();
        for name in standard_registry().names() {
            let run = Anonymizer::new()
                .l(2)
                .mechanism(name)
                .shards(2)
                .run(&t)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(run.publication.is_l_diverse(&t, 2), "{name}");
            assert!(run.kl.is_finite() && run.kl >= -1e-9, "{name}: {}", run.kl);
            // `run` validated the publication, which includes full cover.
            assert_eq!(run.publication.covered_rows(), t.len(), "{name}");
        }
    }

    #[test]
    fn unknown_mechanism_is_reported() {
        let t = samples::hospital();
        let err = Anonymizer::new().mechanism("nope").run(&t).unwrap_err();
        assert!(matches!(err, LdivError::UnknownMechanism { .. }));
    }

    #[test]
    fn preprocessing_rejects_an_explicit_shard_count() {
        // The CLI surfaces this conflict as a usage error; the library
        // must not silently drop the requested sharding either. The
        // auto form (0) stays permitted — preprocessing is documented
        // to run unsharded under it.
        let t = samples::hospital();
        let err = Anonymizer::new()
            .l(2)
            .shards(4)
            .preprocess_depth(1)
            .run(&t)
            .unwrap_err();
        assert!(matches!(err, LdivError::InvalidParams(_)), "{err}");
        assert!(err.to_string().contains("unsharded"), "{err}");
        Anonymizer::new()
            .l(2)
            .shards(0)
            .preprocess_depth(1)
            .run(&t)
            .unwrap();
    }

    #[test]
    fn preprocessing_notes_an_ambient_shard_override() {
        // With `shards = 0` the ambient `LDIV_SHARDS` override may
        // resolve above 1; preprocessing still runs unsharded and must
        // say so in the publication. This test is differential on the
        // environment: the CI leg that runs the suite under
        // `LDIV_SHARDS=2` exercises the note path, a plain run the
        // silent path.
        let t = samples::hospital();
        let run = Anonymizer::new()
            .l(2)
            .shards(0)
            .preprocess_depth(1)
            .run(&t)
            .unwrap();
        let ambient = Params::new(2).resolved_shards();
        let noted = run
            .publication
            .notes()
            .iter()
            .any(|n| n.contains("coarse table ran unsharded"));
        if ambient > 1 {
            assert!(noted, "notes: {:?}", run.publication.notes());
            assert!(
                run.publication
                    .notes()
                    .iter()
                    .any(|n| n.contains(&format!("LDIV_SHARDS={ambient}"))),
                "notes: {:?}",
                run.publication.notes()
            );
        } else {
            assert!(!noted, "notes: {:?}", run.publication.notes());
        }
        // An explicit shard request of 1 is genuinely unsharded — never
        // noted, whatever the environment says.
        let explicit = Anonymizer::new()
            .l(2)
            .shards(1)
            .preprocess_depth(1)
            .run(&t)
            .unwrap();
        assert!(
            !explicit
                .publication
                .notes()
                .iter()
                .any(|n| n.contains("coarse table ran unsharded")),
            "notes: {:?}",
            explicit.publication.notes()
        );
    }

    #[test]
    fn preprocessing_rejects_non_suppression_mechanisms() {
        let t = samples::hospital();
        let err = Anonymizer::new()
            .l(2)
            .mechanism("tds")
            .preprocess_depth(1)
            .run(&t)
            .unwrap_err();
        assert!(matches!(err, LdivError::InvalidParams(_)), "{err}");
    }
}
