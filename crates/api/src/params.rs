//! The shared parameter bag every mechanism receives.

use crate::LdivError;
use ldiv_exec::{Deadline, Executor};
use ldiv_microdata::Table;

/// Hard ceiling on the partition-level shard count, mirroring
/// [`ldiv_exec::MAX_THREADS`]; it guards against typos like
/// `--shards 100000`, not against any sane configuration.
pub const MAX_SHARDS: u32 = 64;

/// The environment variable consulted when [`Params::shards`] is `0`
/// (auto). The CI gate runs the whole suite under `LDIV_SHARDS=2` to
/// flush out code paths that silently assume a single shard.
pub const SHARDS_ENV: &str = "LDIV_SHARDS";

/// Parameters common to every publication mechanism.
///
/// Mechanisms read what applies to them: all of them honour [`l`](Params::l)
/// and may fan out over [`threads`](Params::threads); taxonomy-based methods
/// (TDS, §5.6 preprocessing) also honour [`fanout`](Params::fanout).
/// Unknown-to-a-mechanism fields are ignored by design, so one `Params`
/// value can drive a whole registry sweep. [`shards`](Params::shards) is
/// honoured by the partition-level sharding driver (`ldiv-shard`), never
/// by an individual mechanism: a direct [`Mechanism::anonymize`] call
/// always publishes the single-shard output.
///
/// [`Mechanism::anonymize`]: crate::Mechanism::anonymize
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// The diversity requirement (Definition 2). Must be ≥ 1; ≥ 2 to be
    /// useful.
    pub l: u32,
    /// Fanout of generated balanced taxonomies (TDS and preprocessing).
    pub fanout: u32,
    /// Intra-run thread budget; `0` means auto (`LDIV_THREADS`, else the
    /// machine's parallelism). **Execution-only**: every mechanism must
    /// publish byte-identical output for every budget, so this field is
    /// deliberately excluded from [`canonical`](Params::canonical) — a
    /// cached publication computed at one budget serves requests at any
    /// other.
    pub threads: u32,
    /// Partition-level shard count for the `ldiv-shard` driver; `0`
    /// means auto ([`SHARDS_ENV`], else 1 — sharding stays opt-in).
    /// **Output-affecting**: anonymizing K shards and stitching them
    /// publishes a different (slightly less useful) table than one
    /// global run, so the resolved count participates in
    /// [`canonical`](Params::canonical) and therefore in cache keys.
    pub shards: u32,
    /// The run's time budget, anchored to an absolute instant when the
    /// request enters the system ([`Deadline::none`] by default).
    /// **Execution-only**, exactly like [`threads`](Params::threads): a
    /// deadline either lets the run finish (same bytes as an unlimited
    /// run) or aborts it with [`LdivError::DeadlineExceeded`] — it never
    /// changes a published table — so it is excluded from
    /// [`canonical`](Params::canonical) and cache keys.
    pub deadline: Deadline,
}

impl Params {
    /// Parameters at diversity `l` with default fanout 2, the auto
    /// thread budget and the auto (single unless [`SHARDS_ENV`] says
    /// otherwise) shard count.
    pub fn new(l: u32) -> Self {
        Params {
            l,
            fanout: 2,
            threads: 0,
            shards: 0,
            deadline: Deadline::none(),
        }
    }

    /// Replaces the taxonomy fanout.
    pub fn with_fanout(mut self, fanout: u32) -> Self {
        self.fanout = fanout;
        self
    }

    /// Replaces the intra-run thread budget (`0` = auto, `1` = strictly
    /// sequential).
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = threads;
        self
    }

    /// Replaces the partition-level shard count (`0` = auto via
    /// [`SHARDS_ENV`], `1` = unsharded).
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// Attaches a time budget to the run. The deadline is an absolute
    /// instant, so every shard and nested fork of this run expires at
    /// the same moment. Execution-only — never part of the cache key.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// The shard count this run publishes with: the explicit value, or —
    /// when `0` — the [`SHARDS_ENV`] override, else 1. Clamped to
    /// `1..=`[`MAX_SHARDS`]. Output depends on this resolution, which is
    /// why [`canonical`](Params::canonical) spells it out instead of the
    /// raw field. (On degenerate inputs the driver may effectively run
    /// fewer shards — a K-way split needs K rows; the publication's
    /// stitch note records the effective count.)
    pub fn resolved_shards(&self) -> u32 {
        let raw = if self.shards == 0 {
            std::env::var(SHARDS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<u32>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1)
        } else {
            self.shards
        };
        raw.clamp(1, MAX_SHARDS)
    }

    /// The [`Executor`] for this run's thread budget, carrying the
    /// run's deadline. Mechanisms use this for their fork-join and
    /// reduction fan-out; the executor's loops double as the
    /// cooperative cancellation points.
    pub fn executor(&self) -> Executor {
        Executor::new(self.threads).with_deadline(self.deadline)
    }

    /// The canonical, order-stable text form of the *output-affecting*
    /// parameters — `l=4;fanout=2;shards=1` — used as a cache-key
    /// component and in wire responses.
    ///
    /// Every output-affecting field participates, fields appear in
    /// declaration order, and defaults are spelled out rather than
    /// omitted. [`threads`](Params::threads) is excluded on purpose: the
    /// determinism contract guarantees the thread budget never changes a
    /// publication, so including it would only split cache lines that
    /// hold identical results. [`shards`](Params::shards) *does* change
    /// the published table, so its **resolved** value (auto spelled out,
    /// so an env-dependent `0` can never alias two different outputs
    /// under one key) is included. New fields must be classified here
    /// when they are added to the struct (the exhaustive destructuring
    /// below makes forgetting a compile error).
    pub fn canonical(&self) -> String {
        let Params {
            l,
            fanout,
            threads: _,  // execution-only: must never affect output
            shards: _,   // spelled out resolved, below
            deadline: _, // execution-only: finishes or 504s, never changes bytes
        } = *self;
        format!("l={l};fanout={fanout};shards={}", self.resolved_shards())
    }

    /// Checks that the parameters are internally valid and feasible for a
    /// table: `l ≥ 1`, `fanout ≥ 2`, and the table is l-eligible.
    pub fn validate_for(&self, table: &Table) -> Result<(), LdivError> {
        if self.l == 0 {
            return Err(LdivError::InvalidL(self.l));
        }
        if self.fanout < 2 {
            return Err(LdivError::InvalidParams(format!(
                "taxonomy fanout must be at least 2, got {}",
                self.fanout
            )));
        }
        table.check_l_feasible(self.l)?;
        Ok(())
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::new(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldiv_microdata::samples;

    #[test]
    fn canonical_form_is_total_and_injective_on_output_fields() {
        // Shards pinned explicitly: the suite also runs under an
        // `LDIV_SHARDS` override in CI, which moves the *auto* form.
        assert_eq!(
            Params::new(4).with_shards(1).canonical(),
            "l=4;fanout=2;shards=1"
        );
        assert_eq!(
            Params::new(4).with_fanout(3).with_shards(1).canonical(),
            "l=4;fanout=3;shards=1"
        );
        assert_ne!(Params::new(4).canonical(), Params::new(5).canonical());
        assert_ne!(
            Params::new(4).canonical(),
            Params::new(4).with_fanout(4).canonical()
        );
        assert_ne!(
            Params::new(4).with_shards(1).canonical(),
            Params::new(4).with_shards(2).canonical(),
            "sharding changes the published table, so it must move the key"
        );
    }

    #[test]
    fn shard_resolution_spells_out_auto_and_clamps() {
        assert_eq!(Params::new(4).with_shards(3).resolved_shards(), 3);
        assert_eq!(Params::new(4).with_shards(1_000_000).resolved_shards(), 64);
        // The auto form follows the environment override, exactly like
        // the canonical string reports it.
        let auto = Params::new(4).resolved_shards();
        let expect = std::env::var(SHARDS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
            .clamp(1, MAX_SHARDS);
        assert_eq!(auto, expect);
        assert_eq!(
            Params::new(4).canonical(),
            format!("l=4;fanout=2;shards={auto}")
        );
    }

    #[test]
    fn canonical_form_ignores_the_thread_budget() {
        // Regression (cache-key stability): the thread budget is
        // execution-only — publications are byte-identical across
        // budgets — so the server cache must keep hitting when the same
        // request arrives with a different `threads`. If this test
        // breaks, every cached publication silently stops being shared
        // across thread configurations.
        let base = Params::new(4).with_fanout(3).with_shards(2);
        for threads in [0u32, 1, 2, 8, 64] {
            assert_eq!(
                base.with_threads(threads).canonical(),
                base.canonical(),
                "threads={threads} must not change the cache key"
            );
        }
    }

    #[test]
    fn canonical_form_ignores_the_deadline() {
        // Regression (cache-key stability): a deadline either lets the
        // run publish the same bytes as an unlimited run or aborts it
        // with DeadlineExceeded — it never alters output — so
        // `--deadline-ms` must not split cache lines. Every request
        // anchors a *fresh* Instant; if the deadline leaked into
        // canonical(), no two requests would ever share a cache entry.
        let base = Params::new(4).with_fanout(3).with_shards(2);
        for ms in [1u64, 50, 10_000] {
            assert_eq!(
                base.with_deadline(Deadline::within_ms(ms)).canonical(),
                base.canonical(),
                "deadline_ms={ms} must not change the cache key"
            );
        }
        assert_eq!(
            base.with_deadline(Deadline::none()).canonical(),
            base.with_deadline(Deadline::within_ms(25)).canonical()
        );
    }

    #[test]
    fn executor_carries_the_deadline() {
        let p = Params::new(2).with_deadline(Deadline::within_ms(60_000));
        assert!(p.executor().deadline().is_limited());
        assert!(!Params::new(2).executor().deadline().is_limited());
    }

    #[test]
    fn executor_honours_the_budget() {
        assert_eq!(Params::new(2).with_threads(1).executor().threads(), 1);
        assert_eq!(Params::new(2).with_threads(5).executor().threads(), 5);
        assert!(Params::new(2).executor().threads() >= 1); // auto
    }

    #[test]
    fn validation_catches_bad_l_and_fanout() {
        let t = samples::hospital();
        assert!(matches!(
            Params::new(0).validate_for(&t),
            Err(LdivError::InvalidL(0))
        ));
        assert!(matches!(
            Params::new(2).with_fanout(1).validate_for(&t),
            Err(LdivError::InvalidParams(_))
        ));
        assert!(Params::new(2).validate_for(&t).is_ok());
        // The hospital table is not 3-eligible (HIV appears 4× in 10 rows).
        assert!(matches!(
            Params::new(4).validate_for(&t),
            Err(LdivError::Infeasible(_))
        ));
    }
}
