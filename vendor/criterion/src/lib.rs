//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace benches use (`Criterion`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! the `criterion_group!`/`criterion_main!` macros and `black_box`) with a
//! coarse measurement loop: a short warm-up followed by timed iterations,
//! reporting the fastest observed time per iteration. No statistics,
//! plots or regression tracking — swap the real crate back in when the
//! build environment has registry access.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stub does not normalize by
    /// throughput.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a closure against one input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    /// Benchmarks a closure with no extra input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        best: Duration::MAX,
        iterations: 0,
    };
    f(&mut bencher);
    if bencher.iterations > 0 {
        println!(
            "{label:<40} fastest {:>12.3?} ({} iterations)",
            bencher.best, bencher.iterations
        );
    }
}

/// Times the body passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    best: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs the routine a handful of times, tracking the fastest run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let budget = Duration::from_millis(300);
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            self.best = self.best.min(dt);
            self.iterations += 1;
            if started.elapsed() > budget || self.iterations >= 10 {
                break;
            }
        }
    }
}

/// Benchmark identifier: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A two-part id, rendered `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Units the measured routine processes per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            $($group();)+
        }
    };
}
