//! Seeded categorical sampling utilities.

use rand::Rng;

/// A categorical distribution sampled by binary search over the cumulative
/// weight table. Construction is `O(k)`, sampling `O(log k)`.
#[derive(Debug, Clone)]
pub struct CategoricalDist {
    cumulative: Vec<f64>,
}

impl CategoricalDist {
    /// Builds from non-negative weights (not necessarily normalized).
    /// Panics when all weights are zero or any is negative/NaN.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be finite and ≥ 0");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "total weight must be positive");
        CategoricalDist { cumulative }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution is over zero categories (never true — the
    /// constructor rejects it; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one category index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen_range(0.0..total);
        // partition_point: first index with cumulative > x.
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }

    /// Probability of one category.
    pub fn probability(&self, i: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let hi = self.cumulative[i];
        let lo = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (hi - lo) / total
    }
}

/// Zipf-like weights `w_k = 1 / (k + 1)^s` over `n` categories.
///
/// The exponent controls skew; `s = 0.5` keeps the top share of a 50-value
/// domain under 8%, which is what the SA attributes need for the paper's
/// `l ≤ 10` sweeps.
#[derive(Debug, Clone, Copy)]
pub struct ZipfWeights {
    /// Number of categories.
    pub n: usize,
    /// Skew exponent `s ≥ 0` (0 = uniform).
    pub s: f64,
}

impl ZipfWeights {
    /// Materializes the weight vector.
    pub fn weights(&self) -> Vec<f64> {
        (0..self.n)
            .map(|k| 1.0 / ((k + 1) as f64).powf(self.s))
            .collect()
    }

    /// Builds the categorical distribution directly.
    pub fn dist(&self) -> CategoricalDist {
        CategoricalDist::new(&self.weights())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sample_respects_zero_weights() {
        let d = CategoricalDist::new(&[0.0, 1.0, 0.0, 2.0]);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..500 {
            let s = d.sample(&mut rng);
            assert!(s == 1 || s == 3);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let d = CategoricalDist::new(&[1.0, 2.0, 3.0, 4.0]);
        let total: f64 = (0..4).map(|i| d.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((d.probability(3) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empirical_frequencies_track_weights() {
        let d = CategoricalDist::new(&[1.0, 3.0]);
        let mut rng = SmallRng::seed_from_u64(42);
        let hits = (0..20_000).filter(|_| d.sample(&mut rng) == 1).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.75).abs() < 0.02, "freq = {freq}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_weights_rejected() {
        CategoricalDist::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_top_share_is_bounded_for_mild_skew() {
        let d = ZipfWeights { n: 50, s: 0.5 }.dist();
        assert!(d.probability(0) < 0.10, "top share {}", d.probability(0));
        // And uniform when s = 0.
        let u = ZipfWeights { n: 4, s: 0.0 }.dist();
        assert!((u.probability(2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = ZipfWeights { n: 10, s: 1.0 }.dist();
        let seq = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..32).map(|_| d.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(seq(9), seq(9));
        assert_ne!(seq(9), seq(10));
    }
}
