//! Chaos suite: the live service under injected faults (`ldiv-guard`).
//!
//! Each test boots a real `Server` on an ephemeral port, arms a fault
//! plan through `guard::fault::install` (the programmatic form of
//! `LDIV_FAULT`), and asserts the robustness contract end-to-end over
//! raw sockets:
//!
//! * a panicking mechanism degrades to a well-formed `500` — the
//!   connection is answered, the worker survives, the pool stays at
//!   full strength, and the publication cache keeps serving hits
//!   byte-identical to its pre-fault responses;
//! * an elapsed per-request deadline surfaces as `504` within twice the
//!   configured budget, not as a hung or half-written response;
//! * a stalled queue overflows into immediate `503`s instead of an
//!   unbounded backlog;
//! * `/sweep` reports a faulted mechanism as a per-mechanism error
//!   entry inside a `200`, never by dropping the whole sweep.
//!
//! The fault plan is process-global, so every test serializes on one
//! mutex and disarms before releasing it.

use ldiversity::datagen::{sal, AcsConfig};
use ldiversity::guard::fault::{install, FaultPlan};
use ldiversity::obs::registry::validate_prometheus;
use ldiversity::server::{handle_request, AppState, Request, Server, ServerConfig};
use ldiversity::standard_registry;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Serializes the suite: the fault plan is a process-wide singleton.
static SERIAL: Mutex<()> = Mutex::new(());

/// Arms `plan` for the duration of `body`, disarming afterwards even if
/// the body panics, all under the suite lock.
fn with_faults(plan: Option<FaultPlan>, body: impl FnOnce()) {
    let _guard: MutexGuard<'_, ()> = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    install(plan);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    install(None);
    if let Err(payload) = outcome {
        std::panic::resume_unwind(payload);
    }
}

fn plan(spec: &str) -> Option<FaultPlan> {
    Some(FaultPlan::parse(spec).expect(spec))
}

fn dataset_csv(rows: usize, seed: u64) -> Vec<u8> {
    let table = sal(&AcsConfig { rows, seed });
    let mut csv = Vec::new();
    ldiversity::microdata::write_table_csv(&mut csv, &table).unwrap();
    csv
}

/// One HTTP exchange over a real socket; panics on any transport
/// failure, so "no dropped connections" is asserted by construction.
fn http(addr: std::net::SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .unwrap();
    stream.write_all(body).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Extracts the integer following `"key":` in a rendered JSON document.
fn json_u64(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no {needle} in {body}"))
        + needle.len();
    body[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {needle} in {body}"))
}

/// The headline chaos scenario: a concurrent burst against a server
/// whose every mechanism panics. Every connection must come back with a
/// well-formed 200/500/503/504, the cache must keep answering hits
/// (byte-identical to its pre-fault responses), and `/stats` must show
/// the worker pool at full strength with the panics accounted.
#[test]
fn panicking_mechanisms_degrade_to_500s_and_the_pool_survives() {
    let csv = dataset_csv(400, 71);
    let server = Server::bind(
        "127.0.0.1:0",
        standard_registry(),
        ServerConfig {
            workers: 3,
            queue_depth: 32,
            cache_capacity: 16,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Pre-fault baseline: one miss, then a hit whose body we pin.
    let (status, first) = http(addr, "POST", "/anonymize?algo=tp&l=3", &csv);
    assert_eq!(status, 200, "{first}");
    assert!(first.contains("\"cached\":false"), "{first}");
    let (status, cached_before) = http(addr, "POST", "/anonymize?algo=tp&l=3", &csv);
    assert_eq!(status, 200);
    assert!(cached_before.contains("\"cached\":true"), "{cached_before}");

    with_faults(plan("panic:*"), || {
        // A concurrent burst: cached (tp) and uncached mechanisms mixed.
        let targets = [
            "/anonymize?algo=tp&l=3", // cached → 200 even under faults
            "/anonymize?algo=mondrian&l=3",
            "/anonymize?algo=anatomy&l=3",
            "/anonymize?algo=tds&l=3",
            "/anonymize?algo=hilbert&l=3",
            "/anonymize?algo=tp%2B&l=3",
        ];
        let results: Vec<(String, u16, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..12)
                .map(|i| {
                    let target = targets[i % targets.len()];
                    let csv = &csv;
                    scope.spawn(move || {
                        let (status, body) = http(addr, "POST", target, csv);
                        (target.to_string(), status, body)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let mut fault_500s = 0;
        for (target, status, body) in &results {
            assert!(
                matches!(status, 200 | 500 | 503 | 504),
                "{target}: unexpected status {status}: {body}"
            );
            // Well-formed single-document JSON either way.
            assert!(
                body.starts_with('{') && body.ends_with('}'),
                "{target}: malformed body: {body}"
            );
            match status {
                500 => {
                    assert!(body.contains("\"kind\":\"internal\""), "{target}: {body}");
                    assert!(body.contains("injected fault"), "{target}: {body}");
                    fault_500s += 1;
                }
                200 => assert!(body.contains("\"cached\":true"), "{target}: {body}"),
                _ => {}
            }
        }
        // The injected panics actually fired...
        assert!(fault_500s >= 1, "no injected 500 in {results:?}");
        // ...and the cache kept serving through them.
        assert!(
            results
                .iter()
                .any(|(t, s, _)| t.contains("algo=tp&") && *s == 200),
            "cached mechanism did not answer during the fault window: {results:?}"
        );
    });

    // Faults cleared: the very next request is a cache hit byte-identical
    // to the pre-fault response.
    let (status, cached_after) = http(addr, "POST", "/anonymize?algo=tp&l=3", &csv);
    assert_eq!(status, 200);
    assert_eq!(
        cached_after, cached_before,
        "cache content drifted across the fault window"
    );

    // /stats: the pool is at full strength and the panics were counted.
    let (status, stats) = http(addr, "GET", "/stats", b"");
    assert_eq!(status, 200);
    assert_eq!(json_u64(&stats, "alive"), 3, "{stats}");
    assert_eq!(json_u64(&stats, "target"), 3, "{stats}");
    assert!(json_u64(&stats, "panics_caught") >= 1, "{stats}");

    server.shutdown();
}

/// A request whose run dawdles past the configured per-request deadline
/// answers `504 deadline_exceeded` within twice the budget — cancelled
/// cooperatively, not hung until some outer timeout.
#[test]
fn deadline_surfaces_as_504_within_twice_the_budget() {
    let csv = dataset_csv(300, 72);
    with_faults(plan("slow:5000"), || {
        let server = Server::bind(
            "127.0.0.1:0",
            standard_registry(),
            ServerConfig {
                workers: 2,
                deadline_ms: 400,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let start = Instant::now();
        let (status, body) = http(server.addr(), "POST", "/anonymize?algo=tp&l=3", &csv);
        let elapsed = start.elapsed();
        assert_eq!(status, 504, "{body}");
        assert!(body.contains("\"kind\":\"deadline_exceeded\""), "{body}");
        assert!(
            elapsed < Duration::from_millis(800),
            "504 took {elapsed:?}, over 2x the 400ms budget"
        );
        // The timed-out request still lands in the anonymize route's
        // latency histogram (observation happens on request completion,
        // whatever the status) and the scrape stays grammatical.
        let (status, scrape) = http(server.addr(), "GET", "/metrics", b"");
        assert_eq!(status, 200);
        if let Err((line, reason)) = validate_prometheus(&scrape) {
            panic!("scrape violates the line grammar at line {line}: {reason}");
        }
        assert!(
            scrape.contains("ldiv_request_duration_seconds_count{route=\"/anonymize\"} 1"),
            "504 missing from the route histogram: {scrape}"
        );
        server.shutdown();
    });
}

/// With the dequeue stalled and a tiny queue, a burst overflows into
/// immediate 503s — bounded back-pressure, not a growing backlog — and
/// the server drains cleanly once the stall is lifted.
#[test]
fn a_stalled_queue_sheds_load_with_503s() {
    let csv = dataset_csv(300, 73);
    with_faults(plan("queue_stall"), || {
        let server = Server::bind(
            "127.0.0.1:0",
            standard_registry(),
            ServerConfig {
                workers: 1,
                queue_depth: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        let statuses: Vec<u16> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..10)
                .map(|_| {
                    let csv = &csv;
                    scope.spawn(move || http(addr, "POST", "/anonymize?algo=tp&l=3", csv).0)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(
            statuses.iter().all(|s| matches!(s, 200 | 503)),
            "unexpected statuses: {statuses:?}"
        );
        assert!(
            statuses.contains(&503),
            "a 10-deep burst against a stalled 1-worker/2-slot queue shed nothing: {statuses:?}"
        );
        server.shutdown();
    });
}

/// `/metrics` under fire: scrapes interleaved with a `panic:*` burst
/// are always well-formed under the strict Prometheus line grammar, the
/// panics land in `ldiv_panics_caught_total`, and every faulted request
/// still counts into the anonymize route's latency histogram.
#[test]
fn metrics_scrapes_stay_well_formed_during_a_panic_burst() {
    let csv = dataset_csv(300, 76);
    let server = Server::bind(
        "127.0.0.1:0",
        standard_registry(),
        ServerConfig {
            workers: 3,
            queue_depth: 32,
            cache_capacity: 0, // no cache: every burst request really runs
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    with_faults(plan("panic:*"), || {
        // Faulted anonymize requests racing scrapes on sibling threads.
        let scrapes: Vec<String> = std::thread::scope(|scope| {
            let faulted: Vec<_> = (0..6)
                .map(|_| {
                    let csv = &csv;
                    scope.spawn(move || http(addr, "POST", "/anonymize?algo=tp&l=3", csv))
                })
                .collect();
            let scrapers: Vec<_> = (0..4)
                .map(|_| scope.spawn(move || http(addr, "GET", "/metrics", b"")))
                .collect();
            for handle in faulted {
                let (status, body) = handle.join().unwrap();
                assert_eq!(status, 500, "faulted run must degrade to 500: {body}");
            }
            scrapers
                .into_iter()
                .map(|h| {
                    let (status, body) = h.join().unwrap();
                    assert_eq!(status, 200);
                    body
                })
                .collect()
        });
        for scrape in &scrapes {
            if let Err((line, reason)) = validate_prometheus(scrape) {
                panic!("mid-burst scrape violates the grammar at line {line}: {reason}");
            }
        }
    });

    // Post-burst accounting: all six panics caught, all six requests in
    // the anonymize histogram bucket tail (+inf counts everything).
    let (status, scrape) = http(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    if let Err((line, reason)) = validate_prometheus(&scrape) {
        panic!("post-burst scrape violates the grammar at line {line}: {reason}");
    }
    assert!(
        scrape.contains("ldiv_panics_caught_total 6"),
        "panic count missing: {scrape}"
    );
    assert!(
        scrape.contains("ldiv_request_duration_seconds_count{route=\"/anonymize\"} 6"),
        "faulted requests missing from the route histogram: {scrape}"
    );
    assert!(
        scrape.contains("ldiv_request_duration_seconds_bucket{route=\"/anonymize\",le=\"+Inf\"} 6"),
        "+Inf bucket disagrees with the count: {scrape}"
    );

    server.shutdown();
}

/// `/sweep` under a targeted fault: the panicking mechanism becomes a
/// per-mechanism error entry inside a 200; every other mechanism still
/// reports a full summary.
#[test]
fn sweep_reports_a_faulted_mechanism_as_an_error_entry() {
    let csv = dataset_csv(400, 74);
    with_faults(plan("panic:mondrian"), || {
        let state = AppState::new(standard_registry(), ServerConfig::default());
        let response = handle_request(
            &state,
            &Request {
                method: "POST".into(),
                path: "/sweep".into(),
                query: vec![("l".into(), "3".into())],
                headers: Vec::new(),
                body: csv.clone(),
            },
        );
        assert_eq!(response.status, 200, "{}", response.body);
        assert!(
            response.body.contains("\"kind\":\"internal\""),
            "{}",
            response.body
        );
        assert!(
            response.body.contains("\"mechanism\":\"mondrian\""),
            "{}",
            response.body
        );
        // The fault stayed contained: the other five summaries are real.
        for name in ["anatomy", "hilbert", "tds", "tp", "tp+"] {
            let entry = format!("\"mechanism\":\"{name}\",\"params\"");
            assert!(
                response.body.contains(&entry),
                "missing healthy summary for {name}: {}",
                response.body
            );
        }
    });
}

/// A `panic:*` burst across the dataset store's append→publish window.
/// The store must stay consistent: faulted ingestion answers a
/// well-formed 500 and commits *nothing* (no partial segments, no
/// stray temp files, manifest unchanged), and once the plan is
/// disarmed the same append and publish succeed as if the burst never
/// happened.
#[test]
fn store_survives_a_panic_burst_across_the_append_publish_window() {
    let root = std::env::temp_dir().join(format!("ldiv-chaos-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let csv = dataset_csv(400, 75);
    let batch = {
        // A batch from the dataset's own rows: header + three lines,
        // trivially inside the registered domain.
        let text = String::from_utf8(csv.clone()).unwrap();
        let lines: Vec<&str> = text.lines().take(4).collect();
        format!("{}\n", lines.join("\n")).into_bytes()
    };

    let server = Server::bind(
        "127.0.0.1:0",
        standard_registry(),
        ServerConfig {
            workers: 3,
            queue_depth: 32,
            cache_capacity: 16,
            store_root: Some(root.clone()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Healthy window: register, one append, one publish.
    let (status, registered) = http(addr, "POST", "/datasets", &csv);
    assert_eq!(status, 200, "{registered}");
    let fp = registered
        .split("\"dataset\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .expect("register returns the fingerprint")
        .to_string();
    let (status, appended) = http(addr, "POST", &format!("/datasets/{fp}/append"), &batch);
    assert_eq!(status, 200, "{appended}");
    let publish_target = format!("/datasets/{fp}/publish?algo=tp&l=3&shards=2");
    let (status, published) = http(addr, "POST", &publish_target, b"");
    assert_eq!(status, 200, "{published}");
    assert!(published.contains("\"cached\":false"), "{published}");

    let dataset_dir = root.join("datasets").join(&fp);
    // Recursive listing: manifest.txt plus segments/ plus shards/.
    fn listing(dir: &std::path::Path) -> Vec<String> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir).unwrap() {
            let entry = entry.unwrap();
            let name = entry.file_name().to_string_lossy().into_owned();
            if entry.file_type().unwrap().is_dir() {
                names.extend(
                    listing(&entry.path())
                        .into_iter()
                        .map(|child| format!("{name}/{child}")),
                );
            } else {
                names.push(name);
            }
        }
        names.sort();
        names
    }
    let files_before = listing(&dataset_dir);
    let manifest_before = std::fs::read(dataset_dir.join("manifest.txt")).unwrap();

    with_faults(plan("panic:*"), || {
        // The burst: appends and publishes interleaved, all faulted.
        for _ in 0..3 {
            let (status, body) = http(addr, "POST", &format!("/datasets/{fp}/append"), &batch);
            assert_eq!(status, 500, "faulted append must degrade: {body}");
            assert!(body.contains("\"kind\":\"internal\""), "{body}");
            let fresh = format!("/datasets/{fp}/publish?algo=tp%2B&l=3&shards=2");
            let (status, body) = http(addr, "POST", &fresh, b"");
            assert_eq!(status, 500, "faulted publish must degrade: {body}");
            // The pre-fault publication is cached under the *current*
            // lineage and served without crossing the fault boundary.
            let (status, body) = http(addr, "POST", &publish_target, b"");
            assert_eq!(status, 200, "cached publish must survive: {body}");
            assert!(body.contains("\"cached\":true"), "{body}");
        }

        // Mid-burst consistency: no partial segments, no temp files,
        // the manifest byte-identical to the pre-burst commit.
        let files_during = listing(&dataset_dir);
        assert_eq!(files_during, files_before, "faulted appends left debris");
        assert!(
            !files_during.iter().any(|name| name.contains(".tmp-")),
            "unrenamed temp file leaked: {files_during:?}"
        );
        assert_eq!(
            std::fs::read(dataset_dir.join("manifest.txt")).unwrap(),
            manifest_before,
            "faulted append moved the manifest"
        );
    });

    // Disarmed: the same operations succeed, from the same state.
    let (status, body) = http(addr, "POST", &format!("/datasets/{fp}/append"), &batch);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"index\":2"), "{body}");
    let (status, body) = http(addr, "POST", &publish_target, b"");
    assert_eq!(status, 200, "{body}");
    // The lineage moved with the append, so this is a fresh publication
    // over the grown table, not a stale cache hit.
    assert!(body.contains("\"cached\":false"), "{body}");
    assert!(body.contains("\"rows\":406"), "{body}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
