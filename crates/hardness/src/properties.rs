//! Checkable forms of Properties 2–4 of the §4 hardness proof.
//!
//! The reduction's argument analyses *any* 3-diverse generalization `T*`
//! of the constructed table through three structural properties:
//!
//! * **Property 2** — in a *useful* QI-group (one retaining any non-star
//!   value) every retained value is 0;
//! * **Property 3** — a useful group has exactly 3 tuples, `3(d − 1)`
//!   stars and 3 zeros;
//! * **Property 4** — `T*` carries at least `3n(d − 1)` stars.
//!
//! These checkers let the tests (and the `hardness_demo` example) verify
//! the proof's machinery on concrete generalizations instead of trusting
//! the argument: every 3-diverse partition of a reduction table must
//! satisfy all three.

use ldiv_microdata::{Partition, SuppressedTable, Table};

/// The verdict of checking one generalization against Properties 2–4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyReport {
    /// Number of useful (non-futile) QI-groups.
    pub useful_groups: usize,
    /// Property 2 violations: `(group, attr)` pairs where a useful group
    /// retained a non-zero value.
    pub property2_violations: Vec<(usize, usize)>,
    /// Property 3 violations: useful groups with the wrong shape
    /// (size ≠ 3, stars ≠ 3(d−1) or zeros ≠ 3).
    pub property3_violations: Vec<usize>,
    /// Total stars in the generalization.
    pub total_stars: usize,
    /// The Property 4 lower bound `3n(d − 1)` (with `3n` = row count).
    pub star_lower_bound: usize,
}

impl PropertyReport {
    /// Whether every property holds.
    pub fn all_hold(&self) -> bool {
        self.property2_violations.is_empty()
            && self.property3_violations.is_empty()
            && self.total_stars >= self.star_lower_bound
    }
}

/// Checks Properties 2–4 on a 3-diverse generalization of a reduction
/// table (built by [`reduction_table`](crate::reduction_table)).
///
/// The caller asserts 3-diversity separately; the properties are proved
/// *under* that assumption, and this function only audits the structure.
pub fn check_properties(table: &Table, partition: &Partition) -> PropertyReport {
    let published: SuppressedTable = table.generalize(partition);
    let d = table.dimensionality();
    let n_rows = table.len();
    let star_lower_bound = n_rows * (d.saturating_sub(1));

    let mut property2_violations = Vec::new();
    let mut property3_violations = Vec::new();
    let mut useful_groups = 0;

    for (gid, g) in published.groups().iter().enumerate() {
        if g.is_futile() {
            continue;
        }
        useful_groups += 1;
        // Property 2: retained values must be 0.
        for attr in 0..d {
            if let Some(v) = g.value(attr) {
                if v != 0 {
                    property2_violations.push((gid, attr));
                }
            }
        }
        // Property 3: exactly 3 tuples, 3(d − 1) stars, 3 zeros retained.
        let size = g.rows().len();
        let stars = g.star_count();
        let zeros = (0..d).filter(|&a| g.value(a) == Some(0)).count() * size;
        if size != 3 || stars != 3 * (d - 1) || zeros != 3 {
            property3_violations.push(gid);
        }
    }

    PropertyReport {
        useful_groups,
        property2_violations,
        property3_violations,
        total_stars: published.star_count(),
        star_lower_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::optimal_star_partition;
    use crate::reduction::reduction_table;
    use crate::tdm::ThreeDimMatching;
    use ldiv_microdata::RowId;

    fn yes_instance() -> ThreeDimMatching {
        ThreeDimMatching {
            n: 2,
            points: vec![[0, 0, 0], [1, 1, 1], [0, 1, 0]],
        }
    }

    #[test]
    fn optimal_solution_of_yes_instance_satisfies_all_properties() {
        let inst = yes_instance();
        let t = reduction_table(&inst, 3).unwrap();
        let (p, stars) = optimal_star_partition(&t, 3).unwrap();
        assert!(p.is_l_diverse(&t, 3));
        let report = check_properties(&t, &p);
        assert!(report.all_hold(), "{report:?}");
        // The optimal solution of a yes-instance uses only useful groups
        // matched to the 3DM witness: n of them.
        assert_eq!(report.useful_groups, inst.n);
        assert_eq!(report.total_stars, stars);
        assert_eq!(report.total_stars, report.star_lower_bound);
    }

    #[test]
    fn futile_single_group_satisfies_vacuously() {
        // The everything-in-one-group generalization has no useful groups;
        // Properties 2–3 hold vacuously and Property 4 by the star count.
        let inst = yes_instance();
        let t = reduction_table(&inst, 3).unwrap();
        let all: Vec<RowId> = (0..t.len() as RowId).collect();
        let p = ldiv_microdata::Partition::new_unchecked(vec![all]);
        assert!(p.is_l_diverse(&t, 3));
        let report = check_properties(&t, &p);
        assert_eq!(report.useful_groups, 0);
        assert!(report.all_hold());
        assert!(report.total_stars > report.star_lower_bound);
    }

    #[test]
    fn non_diverse_partitions_violate_property_2() {
        // Property 2's proof argues that a group retaining a non-zero
        // value must be SA-homogeneous (hence not 3-eligible). Build such
        // a group explicitly: with n = 3 and diagonal points, the first
        // two domain-1 rows share filler u = 1 on attribute A3 (neither
        // value is p3's coordinate), so grouping them retains a 1.
        let inst = ThreeDimMatching {
            n: 3,
            points: vec![[0, 0, 0], [1, 1, 1], [2, 2, 2]],
        };
        let t = reduction_table(&inst, 3).unwrap();
        assert_eq!(t.qi_row(0), &[0, 1, 1]);
        assert_eq!(t.qi_row(1), &[1, 0, 1]);
        let mut groups = vec![vec![0 as RowId, 1]];
        groups.push((2..t.len() as RowId).collect());
        let p = ldiv_microdata::Partition::new_unchecked(groups);
        // The pair is SA-homogeneous, exactly as Property 2's proof
        // predicts — so the partition is not 3-diverse...
        assert!(!p.is_l_diverse(&t, 3));
        // ...and the checker flags the retained non-zero on A3.
        let report = check_properties(&t, &p);
        assert!(report.property2_violations.contains(&(0, 2)), "{report:?}");
        assert!(!report.all_hold());
    }
}
