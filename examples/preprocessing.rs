//! The §5.6 preprocessing trade-off: coarsening QI domains with a
//! single-dimensional recoding before running TP+ trades suppression
//! (stars) against value precision (wider published sub-domains).
//!
//! This reproduces the workflow the paper sketches in its §5.6 closing
//! paragraph: sweep the preprocessing level, inspect the output, pick the
//! level that optimizes the utility of the l-diverse table.
//!
//! Run with: `cargo run --release --example preprocessing`

use ldiversity::datagen::{sal, AcsConfig};
use ldiversity::pipeline::{preprocessing_sweep, SweepConfig};

fn main() {
    // Age × Birth Place: the §5.6 worst case — two large-domain QIs make
    // most tuples unique, so plain TP suppresses nearly everything.
    let table = sal(&AcsConfig {
        rows: 2_000,
        seed: 17,
    })
    .project(&[0, 4])
    .expect("valid projection");
    let l = 6;

    println!(
        "workload: Age × Birth Place, n = {}, distinct QI vectors = {} ({:.0}%)\n",
        table.len(),
        table.distinct_qi_count(),
        100.0 * table.distinct_qi_count() as f64 / table.len() as f64
    );
    println!(
        "{:>5} {:>12} {:>10} {:>12} {:>10}",
        "depth", "buckets", "stars", "suppressed", "KL"
    );

    let points = preprocessing_sweep(
        &table,
        &SweepConfig {
            l,
            fanout: 2,
            max_depth: 10,
        },
    )
    .expect("feasible workload");

    let mut best = (f64::INFINITY, 0usize);
    for (i, p) in points.iter().enumerate() {
        println!(
            "{:>5} {:>12} {:>10} {:>12} {:>10.4}",
            p.depth, p.total_buckets, p.stars, p.suppressed_tuples, p.kl
        );
        if p.kl < best.0 {
            best = (p.kl, i);
        }
    }
    let chosen = &points[best.1];
    println!(
        "\nbest utility at depth {} (KL = {:.4})",
        chosen.depth, chosen.kl
    );
    if best.1 == 0 {
        println!("the fully coarse table wins here — suppression is so costly that");
        println!("giving up all precision beats starring; typical of tiny samples.");
    } else if best.1 == points.len() - 1 {
        println!("the identity wins here — at this density plain TP already");
        println!("suppresses little, so preprocessing only costs precision.");
    } else {
        println!("an interior depth wins: neither the fully coarse nor the identity");
        println!("level is optimal — the sweep finds the §5.6 sweet spot.");
    }
}
