//! The unified-API faces of this crate: the `"hilbert"` baseline and the
//! `"tp+"` hybrid.

use crate::grouping::{hilbert_publish_with, HilbertResidue};
use ldiv_api::{LdivError, Mechanism, Params, Payload, Publication};
use ldiv_core::TpHybridMechanism;
use ldiv_microdata::Table;

/// The paper's **TP+** (§5.6): TP with Hilbert-curve residue
/// re-partitioning, as a unified mechanism named `"tp+"`.
pub type TpPlusMechanism = TpHybridMechanism<HilbertResidue>;

/// Constructs the `"tp+"` mechanism.
pub fn tp_plus_mechanism() -> TpPlusMechanism {
    TpHybridMechanism::new("tp+", HilbertResidue)
}

/// The full-table Hilbert suppression baseline (`"hilbert"`, §6.1).
pub struct HilbertMechanism;

impl Mechanism for HilbertMechanism {
    fn name(&self) -> &str {
        "hilbert"
    }

    fn description(&self) -> &str {
        "curve-ordered l-eligible grouping over the whole table (§6.1 baseline)"
    }

    fn anonymize(&self, table: &Table, params: &Params) -> Result<Publication, LdivError> {
        params.validate_for(table)?;
        let exec = params.executor();
        ldiv_guard::fault::mechanism_entry(self.name(), &exec);
        let (partition, published) = hilbert_publish_with(table, params.l, &exec);
        Ok(Publication::new(
            "hilbert",
            partition,
            Payload::Suppressed(published),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::hilbert_publish;

    #[test]
    fn mechanisms_match_the_low_level_calls() {
        let t = ldiv_microdata::samples::hospital();
        let params = Params::new(2);

        let hil = HilbertMechanism.anonymize(&t, &params).unwrap();
        let (p, published) = hilbert_publish(&t, 2);
        assert_eq!(hil.partition().groups(), p.groups());
        assert_eq!(hil.star_count(), published.star_count());
        hil.validate(&t, 2).unwrap();

        let tpp = tp_plus_mechanism().anonymize(&t, &params).unwrap();
        assert_eq!(tpp.mechanism(), "tp+");
        let direct = ldiv_core::anonymize(&t, 2, &HilbertResidue).unwrap();
        assert_eq!(tpp.star_count(), direct.star_count());
        tpp.validate(&t, 2).unwrap();
    }

    #[test]
    fn infeasible_inputs_error_cleanly() {
        let t = ldiv_microdata::samples::hospital();
        assert!(HilbertMechanism.anonymize(&t, &Params::new(5)).is_err());
        assert!(tp_plus_mechanism().anonymize(&t, &Params::new(5)).is_err());
    }

    #[test]
    fn repair_merge_restores_eligibility_across_shard_seams() {
        // Hand the sharding repair hook two per-"shard" publications
        // whose trailing groups violate l = 2 (singleton residues): the
        // stitch must fuse them and publish one valid suppression of the
        // whole table for both faces of this crate.
        use ldiv_microdata::Partition;
        let t = ldiv_microdata::samples::hospital();
        let params = Params::new(2);
        let suppressed_of = |name: &str, groups: Vec<Vec<u32>>| {
            Publication::suppressed(name, &t, Partition::new_unchecked(groups))
        };
        for mechanism in [&HilbertMechanism as &dyn Mechanism, &tp_plus_mechanism()] {
            let name = mechanism.name();
            let shards = vec![
                suppressed_of(name, vec![vec![0, 1, 4, 5], vec![8]]),
                suppressed_of(name, vec![vec![2, 3, 6, 7], vec![9]]),
            ];
            let stitched = mechanism.repair_merge(&t, &params, shards).unwrap();
            stitched
                .validate(&t, 2)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(stitched.is_l_diverse(&t, 2), "{name}");
            // The two singleton violators fused into one group.
            assert_eq!(stitched.group_count(), 3, "{name}");
        }
    }
}
