//! The unified anonymization contract of the `ldiversity` workspace.
//!
//! The paper's evaluation compares five publication methods — TP/TP+
//! (§5), Anatomy (§2), Mondrian (§6.2), Hilbert suppression and TDS —
//! which historically each exposed their own entry point with its own
//! output shape. This crate defines the seam they all plug into:
//!
//! * [`Mechanism`] — the object-safe trait every publication method
//!   implements (`ldiv-core`, `ldiv-anatomy`, `ldiv-multidim`,
//!   `ldiv-hilbert`, `ldiv-tds` each provide impls);
//! * [`Publication`] — the normalized output: an l-diverse [`Partition`]
//!   plus a per-group generalization [`Payload`] (suppressed stars,
//!   covering boxes, anatomy QIT/ST, or a global recoding), so
//!   `ldiv-metrics` can account stars and the Eq. (2) KL-divergence
//!   uniformly over any mechanism;
//! * [`Params`] — the shared parameter bag (`l`, taxonomy fanout);
//! * [`MechanismRegistry`] — string-keyed dispatch (`"tp"`, `"tp+"`,
//!   `"anatomy"`, `"mondrian"`, `"hilbert"`, `"tds"`);
//! * [`LdivError`] — the workspace-wide error type with CLI exit-code
//!   discipline.
//!
//! This crate depends only on `ldiv-microdata`; the populated standard
//! registry and the [`Anonymizer`-style builder](https://docs.rs) front
//! door live in the facade crate `ldiversity`, which can see every
//! mechanism implementation.
//!
//! ```
//! use ldiv_api::{LdivError, Mechanism, Params, Publication};
//! use ldiv_microdata::{samples, Partition, Table};
//!
//! /// A toy mechanism: publish the whole table as one suppressed group.
//! struct OneGroup;
//!
//! impl Mechanism for OneGroup {
//!     fn name(&self) -> &str {
//!         "one-group"
//!     }
//!
//!     fn anonymize(&self, table: &Table, params: &Params) -> Result<Publication, LdivError> {
//!         params.validate_for(table)?;
//!         let partition =
//!             Partition::new_unchecked(vec![(0..table.len() as u32).collect()]);
//!         Ok(Publication::suppressed(self.name(), table, partition))
//!     }
//! }
//!
//! let table = samples::hospital();
//! let publication = OneGroup.anonymize(&table, &Params::new(2)).unwrap();
//! assert!(publication.is_l_diverse(&table, 2));
//! assert_eq!(publication.star_count(), 30); // everything suppressed
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod mechanism;
mod params;
mod publication;
mod recoding;
mod registry;
pub mod repair;

pub use error::LdivError;
pub use ldiv_exec::{Deadline, DEADLINE_ENV};
pub use mechanism::Mechanism;
pub use params::{Params, MAX_SHARDS, SHARDS_ENV};
pub use publication::{AnatomyTables, AttrRange, Payload, Publication, SensitiveEntry};
pub use recoding::Recoding;
pub use registry::MechanismRegistry;
