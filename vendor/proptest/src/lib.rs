//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate vendors the
//! subset of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`, multiple
//!   `#[test]` functions per block, `pat in strategy` arguments);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! * range strategies over primitive integers, tuple strategies,
//!   [`arbitrary::any`], and [`collection::vec`] /
//!   [`collection::btree_set`].
//!
//! Differences from the real crate: failing cases are **not shrunk** (the
//! panic message carries the sampled inputs instead), and value streams
//! are deterministic per test (seeded from the test's module path) rather
//! than persisted in regression files.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines deterministic property tests.
///
/// Grammar (the subset the workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///
///     #[test]
///     fn my_property(x in 0u16..10, v in proptest::collection::vec(0u16..4, 1..20)) {
///         prop_assume!(!v.is_empty());
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            // `prop_assume!` rejections draw fresh inputs; bail out rather
            // than spin forever when the assumption almost never holds.
            let __max_attempts: u32 = __config.cases.saturating_mul(32).max(256);
            while __accepted < __config.cases {
                if __attempts >= __max_attempts {
                    panic!(
                        "proptest stub: only {__accepted}/{} cases accepted after \
                         {__attempts} attempts (assumption too strict?)",
                        __config.cases,
                    );
                }
                __attempts += 1;
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Skips the current case (drawing a fresh one) when the condition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Asserts a condition inside a property test (panics, no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond, "prop_assert failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}
