//! Requests/sec through the anonymization service, cached vs uncached,
//! plus concurrent fan-in storms.
//!
//! Usage: `cargo run --release -p ldiv-bench --bin server_throughput --
//! [--rows N] [--requests N] [--l L] [--algo MECHANISM] [--seed S]
//! [--concurrency N] [--duplicates] [--storm-requests N] [--quick]
//! [--json]`
//!
//! `--concurrency N` adds the storm measurements (N client threads over
//! real sockets); `--duplicates` drives the identical-request storm on
//! top of the mixed one — the single-flight coalescing proof.
//! `--quick` shrinks rows/requests to a CI-smoke size. `--json` swaps
//! the aligned text table for the machine-readable report that
//! `BENCH_serve.json` pins as a baseline.

use ldiv_bench::service::{measure_service, render_json_report, render_report, ServiceBenchConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServiceBenchConfig::default();
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => {
                json = true;
                continue;
            }
            "--duplicates" => {
                cfg.duplicates = true;
                continue;
            }
            "--quick" => {
                cfg.rows = 400;
                cfg.requests = 6;
                cfg.storm_requests = 4;
                continue;
            }
            _ => {}
        }
        let value = it.next();
        let parsed = match (flag.as_str(), value) {
            ("--rows", Some(v)) => v.parse().map(|n| cfg.rows = n).is_ok(),
            ("--requests", Some(v)) => v.parse().map(|n| cfg.requests = n).is_ok(),
            ("--l", Some(v)) => v.parse().map(|n| cfg.l = n).is_ok(),
            ("--algo", Some(v)) => {
                // The config holds a &'static str; leak the one-off choice.
                cfg.mechanism = Box::leak(v.clone().into_boxed_str());
                true
            }
            ("--seed", Some(v)) => v.parse().map(|n| cfg.seed = n).is_ok(),
            ("--concurrency", Some(v)) => v.parse().map(|n| cfg.concurrency = n).is_ok(),
            ("--storm-requests", Some(v)) => v.parse().map(|n| cfg.storm_requests = n).is_ok(),
            _ => false,
        };
        if !parsed {
            eprintln!(
                "usage: server_throughput [--rows N] [--requests N] [--l L] [--algo MECHANISM] \
                 [--seed S] [--concurrency N] [--duplicates] [--storm-requests N] [--quick] [--json]"
            );
            std::process::exit(2);
        }
    }
    let throughput = measure_service(&cfg);
    if json {
        println!("{}", render_json_report(&cfg, &throughput).render());
    } else {
        print!("{}", render_report(&cfg, &throughput));
    }
}
