//! The unified-API face of Mondrian.

use crate::boxes::BoxTable;
use crate::mondrian::mondrian_partition_with;
use ldiv_api::{LdivError, Mechanism, Params, Publication};
use ldiv_microdata::Table;

/// l-diversity-gated Mondrian through the unified [`Mechanism`] trait
/// (registry name `"mondrian"`).
///
/// The publication carries the *native* multi-dimensional boxes payload;
/// callers wanting the suppression rendering for star comparisons can
/// generalize the partition themselves (`table.generalize(partition)`),
/// exactly as the §6.2 comparison does.
pub struct MondrianMechanism;

impl Mechanism for MondrianMechanism {
    fn name(&self) -> &str {
        "mondrian"
    }

    fn description(&self) -> &str {
        "recursive median kd-splits gated by l-eligibility, boxes payload (§6.2, ref. [27])"
    }

    fn anonymize(&self, table: &Table, params: &Params) -> Result<Publication, LdivError> {
        params.validate_for(table)?;
        // The boxes payload is native here; skip mondrian_publish's
        // suppression rendering, which this path would throw away. Both
        // the recursion and the covering boxes honour the run's thread
        // budget (identical output for every budget).
        let exec = params.executor();
        let partition = mondrian_partition_with(table, params.l, &exec);
        let boxed = BoxTable::from_partition_with(table, &partition, &exec);
        let splits = partition.group_count().saturating_sub(1);
        let imprecision = boxed.imprecision();
        let mut publication = boxed.to_publication("mondrian");
        debug_assert_eq!(publication.partition().groups(), partition.groups());
        publication.push_note(format!("{splits} median splits, imprecision {imprecision}"));
        Ok(publication)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mondrian::mondrian_partition;
    use ldiv_api::Payload;
    use ldiv_microdata::samples;

    #[test]
    fn mechanism_face_matches_mondrian_publish() {
        let t = samples::hospital();
        let p = mondrian_partition(&t, 2);
        let boxed = BoxTable::from_partition(&t, &p);
        let publication = MondrianMechanism.anonymize(&t, &Params::new(2)).unwrap();
        assert_eq!(publication.mechanism(), "mondrian");
        assert_eq!(publication.partition().groups(), p.groups());
        publication.validate(&t, 2).unwrap();
        match publication.payload() {
            Payload::Boxes(boxes) => assert_eq!(boxes.len(), boxed.groups().len()),
            other => panic!("wrong payload: {other:?}"),
        }
    }

    #[test]
    fn infeasible_inputs_error_cleanly() {
        let t = samples::hospital();
        assert!(MondrianMechanism.anonymize(&t, &Params::new(7)).is_err());
    }
}
